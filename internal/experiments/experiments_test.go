package experiments

import (
	"sort"
	"strings"
	"testing"

	"resex/internal/sim"
)

// quick returns small-scale options: enough virtual time for stable shapes,
// small enough to keep the test suite fast.
func quick() Options {
	return Options{Duration: 250 * sim.Millisecond, Warmup: 50 * sim.Millisecond}
}

func renderBoth(t *testing.T, r Result) (string, string) {
	t.Helper()
	var txt, csv strings.Builder
	if err := r.WriteText(&txt); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if txt.Len() == 0 || csv.Len() == 0 {
		t.Fatal("empty rendering")
	}
	return txt.String(), csv.String()
}

func TestFig1Shape(t *testing.T) {
	r, err := Fig1(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Normal: tight around ~233µs. Interfered: shifted and spread.
	if r.NormalStd > 10 {
		t.Errorf("normal std %.1f, want tight distribution", r.NormalStd)
	}
	if r.InterferedMean < r.NormalMean*1.2 {
		t.Errorf("interfered mean %.1f not well above normal %.1f", r.InterferedMean, r.NormalMean)
	}
	if r.InterferedStd < 5*r.NormalStd {
		t.Errorf("interfered std %.1f vs normal %.1f: no spread", r.InterferedStd, r.NormalStd)
	}
	if r.Normal.Count() == 0 || r.Interfered.Count() == 0 {
		t.Error("empty histograms")
	}
	txt, csv := renderBoth(t, r)
	if !strings.Contains(txt, "Normal server") || !strings.Contains(csv, "latency_us") {
		t.Error("rendering content")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byKey := map[[2]bool]map[int]Fig2Row{}
	for _, row := range r.Rows {
		k := [2]bool{row.Loaded, false}
		if byKey[k] == nil {
			byKey[k] = map[int]Fig2Row{}
		}
		byKey[k][row.Servers] = row
	}
	for _, row := range r.Rows {
		// CTime roughly constant everywhere (~92µs).
		if row.CTime < 85 || row.CTime > 105 {
			t.Errorf("CTime %.1f at n=%d loaded=%v", row.CTime, row.Servers, row.Loaded)
		}
		// Loaded rows dominate their unloaded counterparts in W and P.
		if row.Loaded {
			base := byKey[[2]bool{false, false}][row.Servers]
			if row.WTime <= base.WTime || row.PTime <= base.PTime {
				t.Errorf("n=%d: load did not raise W/P (%.1f/%.1f vs %.1f/%.1f)",
					row.Servers, row.WTime, row.PTime, base.WTime, base.PTime)
			}
		}
	}
	// More collocated servers never *reduces* latency. (Identical closed
	// loops can settle into collision-free anti-phase schedules, so equal
	// totals are legitimate; the paper's unloaded bars also sit within
	// error bars of each other.)
	u := byKey[[2]bool{false, false}]
	if u[3].Total() < u[1].Total()*0.98 {
		t.Errorf("3-server total %.1f below 1-server %.1f", u[3].Total(), u[1].Total())
	}
	renderBoth(t, r)
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's claim: latency roughly flat across ratios when cap=100/BR.
	lo, hi := r.Rows[0].Total(), r.Rows[0].Total()
	for _, row := range r.Rows {
		tot := row.Total()
		if tot < lo {
			lo = tot
		}
		if tot > hi {
			hi = tot
		}
	}
	if hi > lo*1.35 {
		t.Errorf("ratio-capped latencies spread %.1f–%.1f µs (>35%%), want roughly equal", lo, hi)
	}
	// And all far below the uncapped interference level (~346µs).
	if hi > 310 {
		t.Errorf("capped latency %.1f near uncapped level", hi)
	}
	renderBoth(t, r)
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Monotone non-increasing total latency as the cap tightens (rows are
	// ordered 100..3 then Base), within jitter tolerance.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Total() > r.Rows[i-1].Total()*1.04 {
			t.Errorf("latency rose from cap %d (%.1f) to cap %d (%.1f)",
				r.Rows[i-1].Cap, r.Rows[i-1].Total(), r.Rows[i].Cap, r.Rows[i].Total())
		}
	}
	base := r.Rows[len(r.Rows)-1].Total()
	cap3 := r.Rows[len(r.Rows)-2].Total()
	if cap3 > base*1.1 {
		t.Errorf("cap=3 latency %.1f not near base %.1f (paper: buffer-ratio cap restores base)", cap3, base)
	}
	uncapped := r.Rows[0].Total()
	if uncapped < base*1.3 {
		t.Errorf("uncapped %.1f vs base %.1f: interference too weak", uncapped, base)
	}
	renderBoth(t, r)
}

func TestFig5FreeMarketShape(t *testing.T) {
	r, err := Fig5(Options{Duration: 1200 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// FreeMarket sits between Base and Interfered.
	if r.PolicyMean >= r.IntfMean {
		t.Errorf("FreeMarket %.1f not below interfered %.1f", r.PolicyMean, r.IntfMean)
	}
	if r.PolicyMean <= r.BaseMean {
		t.Errorf("FreeMarket %.1f at/below base %.1f — too good for a latency-blind policy", r.PolicyMean, r.BaseMean)
	}
	// The interferer's cap was engaged at some point (Reso exhaustion).
	if r.IntfCap.YSummary().Min() >= 100 {
		t.Error("FreeMarket never capped the interferer")
	}
	if r.Latency.Len() == 0 || r.IntfResos.Len() == 0 {
		t.Error("missing series")
	}
	renderBoth(t, r)
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(Options{Duration: 1200 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.IntfMinFraction > 0.10 {
		t.Errorf("interferer balance bottomed at %.0f%%, never depleted", r.IntfMinFraction*100)
	}
	if !r.IntfCapEngaged {
		t.Error("rated capping never engaged")
	}
	// The 64KB VM keeps a healthy balance and is never capped.
	if r.RepMinFraction < 0.10 {
		t.Errorf("reporting VM balance bottomed at %.0f%%", r.RepMinFraction*100)
	}
	if r.Timeline.RepCap.YSummary().Min() < 100 {
		t.Error("reporting VM was capped")
	}
	renderBoth(t, r)
}

func TestFig7IOSharesShape(t *testing.T) {
	r, err := Fig7(Options{Duration: 500 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.IntfMean < r.BaseMean*1.3 {
		t.Fatalf("interference too weak: %.1f vs %.1f", r.IntfMean, r.BaseMean)
	}
	// Paper's headline: IOShares achieves near-base latency; at least 30%
	// of the interference is recovered (we typically see >80%).
	rec := (r.IntfMean - r.PolicyMean) / (r.IntfMean - r.BaseMean)
	if rec < 0.3 {
		t.Errorf("IOShares recovered %.0f%% of interference", rec*100)
	}
	// IOShares beats FreeMarket's latency on the same workload.
	fm, err := Fig5(Options{Duration: 500 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.PolicyMean >= fm.PolicyMean {
		t.Errorf("IOShares %.1f not below FreeMarket %.1f", r.PolicyMean, fm.PolicyMean)
	}
	renderBoth(t, r)
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base := r.Rows[0].Mean
	for _, row := range r.Rows[1:] {
		// All non-interference configurations stay near base (paper: the
		// values are almost equal to Base).
		if row.Mean > base*1.25 {
			t.Errorf("%s latency %.1f strays from base %.1f", row.Config, row.Mean, base)
		}
	}
	renderBoth(t, r)
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(Options{Duration: 400 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// IOShares tracks base closely at every buffer size...
		if row.IOShares > row.Base*1.30 {
			t.Errorf("%s: IOShares %.1f vs base %.1f", byteSize(row.Buffer), row.IOShares, row.Base)
		}
		// ...and is never meaningfully worse than FreeMarket.
		if row.IOShares > row.FreeMarket*1.1 {
			t.Errorf("%s: IOShares %.1f above FreeMarket %.1f", byteSize(row.Buffer), row.IOShares, row.FreeMarket)
		}
	}
	// For large buffers FreeMarket is clearly above IOShares (the paper's
	// separation).
	last := r.Rows[len(r.Rows)-1]
	if last.FreeMarket < last.IOShares {
		t.Errorf("1MB: FreeMarket %.1f below IOShares %.1f", last.FreeMarket, last.IOShares)
	}
	renderBoth(t, r)
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 26 { // 9 figures + 13 ablations + 3 workload studies + softrt
		t.Fatalf("IDs = %v", ids)
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("IDs not sorted: %v", ids)
	}
	for _, id := range ids {
		e, err := Lookup(id)
		if err != nil || e.Run == nil || e.Title == "" {
			t.Errorf("entry %q broken: %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestAblArbShape(t *testing.T) {
	r, err := AblArb(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	rr, fifo := r.Rows[0], r.Rows[1]
	if fifo.Mean < 2*rr.Mean {
		t.Errorf("FIFO %.1f not well above RR %.1f", fifo.Mean, rr.Mean)
	}
	if rr.P99 < rr.Mean {
		t.Errorf("p99 %.1f below mean %.1f", rr.P99, rr.Mean)
	}
	renderBoth(t, r)
}

func TestAblMechShape(t *testing.T) {
	r, err := AblMech(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	none, cap, nic := r.Rows[0], r.Rows[1], r.Rows[2]
	// Both mechanisms restore the victim.
	if cap.VictimMean > none.VictimMean*0.85 || nic.VictimMean > none.VictimMean*0.85 {
		t.Errorf("victim: none %.1f, cap %.1f, nic %.1f", none.VictimMean, cap.VictimMean, nic.VictimMean)
	}
	// The NIC limit leaves the interferer far more CPU than the CPU cap.
	if nic.IntfCPU < 5*cap.IntfCPU {
		t.Errorf("interferer CPU: nic %.4fs vs cap %.4fs — expected a large gap", nic.IntfCPU, cap.IntfCPU)
	}
	renderBoth(t, r)
}

func TestAblEventsShape(t *testing.T) {
	r, err := AblEvents(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(mode string, cap int) AblEventsRow {
		for _, row := range r.Rows {
			if row.Mode == mode && row.Cap == cap {
				return row
			}
		}
		t.Fatalf("missing %s/%d", mode, cap)
		return AblEventsRow{}
	}
	// Under the tight cap, events beat polling on throughput.
	if get("events", 10).ReqPerS < 1.2*get("polling", 10).ReqPerS {
		t.Errorf("events %f vs polling %f at cap 10",
			get("events", 10).ReqPerS, get("polling", 10).ReqPerS)
	}
	// Uncapped, polling has lower latency (no interrupt cost in the path).
	if get("polling", 0).Mean > get("events", 0).Mean {
		t.Errorf("uncapped polling %.1f above events %.1f",
			get("polling", 0).Mean, get("events", 0).Mean)
	}
	renderBoth(t, r)
}

func TestAblCapacityShape(t *testing.T) {
	r, err := AblCapacity(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !r.Rows[0].WithinSLA {
		t.Error("a single app must be within SLA")
	}
	// Worst latency is non-decreasing with density (tolerance for
	// scheduling phase effects).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].WorstMean < r.Rows[i-1].WorstMean*0.97 {
			t.Errorf("density %d worst %.1f below density %d worst %.1f",
				r.Rows[i].Apps, r.Rows[i].WorstMean, r.Rows[i-1].Apps, r.Rows[i-1].WorstMean)
		}
	}
	renderBoth(t, r)
}

func TestAblPlacementShape(t *testing.T) {
	r, err := AblPlacement(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 4 strategies × 2 fleet scales
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(strategy string, hosts int) AblPlacementRow {
		for _, row := range r.Rows {
			if row.Strategy == strategy && row.Hosts == hosts {
				return row
			}
		}
		t.Fatalf("missing %s/%d", strategy, hosts)
		return AblPlacementRow{}
	}
	for _, hosts := range []int{4, 8} {
		ia, rd := get("intf-aware", hosts), get("random", hosts)
		// The scheduler's reason to exist: strictly higher SLA attainment
		// than random placement at every fleet scale.
		if ia.SLAPct <= rd.SLAPct {
			t.Errorf("%d hosts: intf-aware %.1f%% SLA not above random %.1f%%",
				hosts, ia.SLAPct, rd.SLAPct)
		}
		// Segregation keeps even the worst app near base latency.
		if ia.WorstMean > r.SLA {
			t.Errorf("%d hosts: intf-aware worst mean %.1f µs above SLA %.1f",
				hosts, ia.WorstMean, r.SLA)
		}
	}
	_, csv := renderBoth(t, r)
	if !strings.Contains(csv, "strategy,hosts,vms,sla_pct") {
		t.Error("rendering content")
	}
}

func TestSoftRTShape(t *testing.T) {
	r, err := SoftRT(Options{Duration: 500 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	alone, bulk, managed := r.Rows[0], r.Rows[1], r.Rows[2]
	if alone.MissRate != 0 {
		t.Errorf("alone miss rate %.2f", alone.MissRate)
	}
	if bulk.MissRate < 0.2 {
		t.Errorf("bulk miss rate %.2f too low", bulk.MissRate)
	}
	if managed.MissRate > bulk.MissRate/2 {
		t.Errorf("IOShares miss rate %.2f vs bulk %.2f", managed.MissRate, bulk.MissRate)
	}
	renderBoth(t, r)
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Duration != 2*sim.Second || o.Warmup != 100*sim.Millisecond {
		t.Errorf("defaults: %+v", o)
	}
}

func TestAblFaultsShape(t *testing.T) {
	r, err := AblFaults(Options{Duration: 400 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 4 intensities × 2 stacks
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(storms float64, stack string) AblFaultsRow {
		for _, row := range r.Rows {
			if row.StormsPerSec == storms && row.Stack == stack {
				return row
			}
		}
		t.Fatalf("missing %v/%s", storms, stack)
		return AblFaultsRow{}
	}
	// No faults: the stacks are indistinguishable and healthy.
	n0, a0 := get(0, "naive"), get(0, "aware")
	if n0.SLAPct < 99 || a0.SLAPct < 99 {
		t.Errorf("fault-free SLA naive %.1f%% / aware %.1f%%, want ~100", n0.SLAPct, a0.SLAPct)
	}
	if n0.Faults != 0 || n0.Wrongful != 0 || a0.Held != 0 {
		t.Errorf("fault-free run recorded faults=%d wrongful=%d held=%d", n0.Faults, n0.Wrongful, a0.Held)
	}
	for _, row := range r.Rows {
		// The gate's contract: the aware stack never throttles on stale
		// evidence, at any intensity.
		if row.Stack == "aware" && row.Wrongful != 0 {
			t.Errorf("aware stack at %v storms/s: %d wrongful throttles, want 0",
				row.StormsPerSec, row.Wrongful)
		}
	}
	// At the top intensity the aware stack must hold what the naive stack
	// gives away (the full-length experiment shows naive <70%, aware >90%;
	// the quick run just demands separation and naive wrongful throttles).
	nTop, aTop := get(24, "naive"), get(24, "aware")
	if nTop.Wrongful == 0 {
		t.Error("top intensity never wrongfully throttled the naive stack")
	}
	if aTop.SLAPct <= nTop.SLAPct {
		t.Errorf("top intensity: aware %.1f%% SLA not above naive %.1f%%", aTop.SLAPct, nTop.SLAPct)
	}
	if aTop.Held == 0 {
		t.Error("aware stack held no tightenings under heavy faults")
	}
	_, csv := renderBoth(t, r)
	if !strings.Contains(csv, "storms_per_sec,stack,sla_pct") {
		t.Error("rendering content")
	}
}

func TestAblFaultsDeterministic(t *testing.T) {
	o := Options{Duration: 300 * sim.Millisecond, Warmup: 50 * sim.Millisecond, Seed: 9}
	a, err := runFaultsRow(o, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFaultsRow(o, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestAblWorkloadShape(t *testing.T) {
	r, err := AblWorkload(Options{Duration: 500 * sim.Millisecond, Warmup: 50 * sim.Millisecond, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 { // 5 loads × 2 policies
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.CapacityPerTenant <= 0 {
		t.Fatalf("capacity %.1f", r.CapacityPerTenant)
	}
	get := func(load int, policy string) AblWorkloadRow {
		for _, row := range r.Rows {
			if row.LoadPct == load && row.Policy == policy {
				return row
			}
		}
		t.Fatalf("missing %d%%/%s", load, policy)
		return AblWorkloadRow{}
	}
	for _, policy := range []string{"freemarket", "ioshares"} {
		light, knee := get(50, policy), get(90, policy)
		// The hockey stick: open-loop queueing past the knee blows the tail
		// in a way closed-loop clients can never show.
		if knee.P99 < 5*light.P99 {
			t.Errorf("%s: p99 %.0f at 90%% load not ≥5× p99 %.0f at 50%%",
				policy, knee.P99, light.P99)
		}
		// Light load actually is light: the p50 stays near the base RTT.
		if l := get(30, policy); l.P50 > workloadSLAUs {
			t.Errorf("%s: p50 %.0f at 30%% load above SLA %.0f — spiral?",
				policy, l.P50, workloadSLAUs)
		}
	}
	// At the knee IOShares keeps the backlog bounded where FreeMarket lets
	// it run away (6.8 ms vs 71 ms in the reference run).
	if ios, fm := get(90, "ioshares"), get(90, "freemarket"); ios.P99 >= fm.P99 {
		t.Errorf("90%% load: ioshares p99 %.0f not below freemarket %.0f", ios.P99, fm.P99)
	}
	renderBoth(t, r)
}

func TestAblWorkloadMixShape(t *testing.T) {
	r, err := AblWorkloadMix(Options{Duration: 500 * sim.Millisecond, Warmup: 50 * sim.Millisecond, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	none, fm, ios := r.Rows[0], r.Rows[1], r.Rows[2]
	// The headline: strict shares keep the latency tenant inside its SLO
	// through the bulk bursts; pricing alone does not.
	if ios.LatAttainPct < fm.LatAttainPct+20 {
		t.Errorf("ioshares attainment %.1f%% not clearly above freemarket %.1f%%",
			ios.LatAttainPct, fm.LatAttainPct)
	}
	if fm.LatAttainPct < none.LatAttainPct {
		t.Errorf("freemarket attainment %.1f%% below unmanaged %.1f%%",
			fm.LatAttainPct, none.LatAttainPct)
	}
	// Protection is paid for in bulk goodput.
	if ios.BulkMBps >= none.BulkMBps {
		t.Errorf("ioshares bulk %.1f MB/s not below unmanaged %.1f", ios.BulkMBps, none.BulkMBps)
	}
	// The closed-loop latency tenant turns lower latency into higher rate.
	if ios.LatCompletedPerSec <= none.LatCompletedPerSec {
		t.Errorf("ioshares lat %.0f req/s not above unmanaged %.0f",
			ios.LatCompletedPerSec, none.LatCompletedPerSec)
	}
	renderBoth(t, r)
}

func TestAblWorkloadBurstShape(t *testing.T) {
	r, err := AblWorkloadBurst(Options{Duration: 500 * sim.Millisecond, Warmup: 50 * sim.Millisecond, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 4 factors × 2 admission policies
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(factor int, admission string) AblWorkloadBurstRow {
		for _, row := range r.Rows {
			if row.Factor == factor && row.Admission == admission {
				return row
			}
		}
		t.Fatalf("missing f=%d/%s", factor, admission)
		return AblWorkloadBurstRow{}
	}
	// Same mean load, packed into ever-sharper bursts: p99 must climb.
	prev := 0.0
	for _, f := range []int{1, 2, 4, 8} {
		row := get(f, "admit-all")
		if row.P99 < prev {
			t.Errorf("admit-all p99 %.0f at f=%d below %.0f at lower factor", row.P99, f, prev)
		}
		if row.ShedPct != 0 {
			t.Errorf("admit-all shed %.1f%% at f=%d", row.ShedPct, f)
		}
		prev = row.P99
	}
	// The cap sheds the burst excess at the door and keeps the tail bounded.
	capped, open := get(8, "queue-cap(32)"), get(8, "admit-all")
	if capped.P99 > open.P99/2 {
		t.Errorf("f=8: queue-cap p99 %.0f not well below admit-all %.0f", capped.P99, open.P99)
	}
	if capped.ShedPct <= 0 {
		t.Error("f=8: queue-cap shed nothing")
	}
	renderBoth(t, r)
}

// TestAblWorkloadParallelDeterminism renders the same sweep at two
// parallelism levels; per-point forked seeds make the outputs byte-identical.
func TestAblWorkloadParallelDeterminism(t *testing.T) {
	render := func(parallel int) string {
		r, err := AblWorkload(Options{
			Duration: 150 * sim.Millisecond, Warmup: 30 * sim.Millisecond,
			Seed: 7, Parallel: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Errorf("-parallel changed the output:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}
