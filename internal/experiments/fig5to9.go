package experiments

import (
	"fmt"
	"io"

	"resex/internal/resex"
	"resex/internal/resos"
	"resex/internal/sim"
	"resex/internal/stats"
)

// ---------------------------------------------------------------------------
// Figures 5 & 7: policy timelines (latency per iteration + interferer cap).
// ---------------------------------------------------------------------------

// TimelineResult reproduces the SLA-performance timelines: the reporting
// VM's latency per iteration for Base / Interfered / Policy runs, plus the
// interfering VM's CPU cap and both VMs' Reso balances per interval under
// the policy.
type TimelineResult struct {
	PolicyName string
	Figure     int

	BaseMean, IntfMean, PolicyMean float64
	BaseStd, IntfStd, PolicyStd    float64

	// Latency is per-iteration latency under the policy (µs vs iteration).
	Latency *stats.Series
	// IntfCap is the interfering VM's cap over time (percent vs interval).
	IntfCap *stats.Series
	// RepResos and IntfResos are Reso balances per interval (Figure 6).
	RepResos, IntfResos *stats.Series
	// RepCap is the reporting VM's cap per interval (stays at 100).
	RepCap *stats.Series
}

// Title implements Result.
func (r *TimelineResult) Title() string {
	return fmt.Sprintf("Figure %d: %s SLA performance (latency timeline + caps)", r.Figure, r.PolicyName)
}

// WriteText implements Result.
func (r *TimelineResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n", r.Title())
	fmt.Fprintf(w, "Base latency 64KB VM:        %8.1f µs (std %.1f)\n", r.BaseMean, r.BaseStd)
	fmt.Fprintf(w, "Interfered latency 64KB VM:  %8.1f µs (std %.1f)\n", r.IntfMean, r.IntfStd)
	fmt.Fprintf(w, "%s latency 64KB VM:  %8.1f µs (std %.1f)\n", r.PolicyName, r.PolicyMean, r.PolicyStd)
	if r.IntfMean > r.BaseMean {
		rec := (r.IntfMean - r.PolicyMean) / (r.IntfMean - r.BaseMean) * 100
		fmt.Fprintf(w, "Interference recovered:      %8.0f %%\n", rec)
	}
	fmt.Fprintf(w, "\nLatency vs iteration (downsampled to 20 buckets, µs):\n")
	for _, p := range r.Latency.Downsample(20).Points() {
		fmt.Fprintf(w, "  iter %7.0f: %7.1f\n", p.X, p.Y)
	}
	if last, ok := r.IntfCap.Last(); ok {
		caps := r.IntfCap.YSummary()
		fmt.Fprintf(w, "\n2MB VM cap: min %.0f%%, mean %.0f%%, final %.0f%%\n", caps.Min(), caps.Mean(), last.Y)
	}
	return nil
}

// WriteCSV implements Result.
func (r *TimelineResult) WriteCSV(w io.Writer) error {
	set := stats.NewSeriesSet(r.Title())
	lat := set.Add("latency_us")
	for _, p := range r.Latency.Downsample(1000).Points() {
		lat.Add(p.X, p.Y)
	}
	cap := set.Add("intf_cap_pct")
	for _, p := range r.IntfCap.Downsample(1000).Points() {
		cap.Add(p.X, p.Y)
	}
	return set.WriteCSV(w)
}

// tlSide is one leg of the Base / Interfered / Policy triple; only the
// policy leg fills the series fields.
type tlSide struct {
	Mean, Std  float64
	PolicyName string
	Latency    *stats.Series
	IntfCap    *stats.Series
	RepCap     *stats.Series
	RepResos   *stats.Series
	IntfResos  *stats.Series
}

// runTimeline executes the Base / Interfered / Policy triple for a policy
// constructor and collects the timeline series.
func runTimeline(o Options, figure int, mkPolicy func() resex.Policy) (*TimelineResult, error) {
	o = o.WithDefaults()
	o.Timeline = true

	meanStd := func(cfg ScenarioConfig) (tlSide, error) {
		s, err := Build(cfg)
		if err != nil {
			return tlSide{}, err
		}
		s.RunMeasured(o)
		st := s.RepStats()
		return tlSide{Mean: st.Total.Mean(), Std: st.Total.StdDev()}, nil
	}
	points := []SweepPoint[tlSide]{
		Point("base", func(o Options) (tlSide, error) {
			return meanStd(ScenarioConfig{Timeline: true, Seed: o.Seed})
		}),
		Point("interfered", func(o Options) (tlSide, error) {
			return meanStd(ScenarioConfig{Timeline: true, IntfBuffer: IntfBuffer, Seed: o.Seed})
		}),
		Point("policy", func(o Options) (tlSide, error) {
			// Policy run with observers.
			policy := mkPolicy()
			side := tlSide{PolicyName: policy.Name()}
			s, err := Build(ScenarioConfig{
				Timeline:   true,
				IntfBuffer: IntfBuffer,
				Policy:     policy,
				SLAUs:      BaseSLAUs,
				Seed:       o.Seed,
			})
			if err != nil {
				return tlSide{}, err
			}
			side.IntfCap = stats.NewSeries("intf-cap")
			side.RepCap = stats.NewSeries("rep-cap")
			side.RepResos = stats.NewSeries("rep-resos")
			side.IntfResos = stats.NewSeries("intf-resos")
			repVM := s.Mgr.VMs()[0]
			intfVM := s.Mgr.VM(s.Intf.ServerVM.Dom.ID())
			s.Mgr.Observe(func(d *resex.IntervalData) {
				x := float64(d.Index)
				capOf := func(vm *resex.ManagedVM) float64 {
					if c := vm.Dom.Cap(); c > 0 {
						return float64(c)
					}
					return 100
				}
				side.IntfCap.Add(x, capOf(intfVM))
				side.RepCap.Add(x, capOf(repVM))
				side.RepResos.Add(x, float64(repVM.Account.Balance()))
				side.IntfResos.Add(x, float64(intfVM.Account.Balance()))
			})
			s.RunMeasured(o)
			st := s.RepStats()
			side.Mean, side.Std = st.Total.Mean(), st.Total.StdDev()
			side.Latency = stats.NewSeries("latency")
			for i, rec := range st.Timeline {
				side.Latency.Add(float64(i), rec.Total().Microseconds())
			}
			return side, nil
		}),
	}
	sides, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	pol := sides[2]
	return &TimelineResult{
		Figure:     figure,
		PolicyName: pol.PolicyName,
		BaseMean:   sides[0].Mean, BaseStd: sides[0].Std,
		IntfMean: sides[1].Mean, IntfStd: sides[1].Std,
		PolicyMean: pol.Mean, PolicyStd: pol.Std,
		Latency: pol.Latency,
		IntfCap: pol.IntfCap, RepCap: pol.RepCap,
		RepResos: pol.RepResos, IntfResos: pol.IntfResos,
	}, nil
}

// Fig5 reproduces the FreeMarket timeline.
func Fig5(o Options) (*TimelineResult, error) {
	return runTimeline(o, 5, func() resex.Policy { return resex.NewFreeMarket() })
}

// Fig7 reproduces the IOShares timeline.
func Fig7(o Options) (*TimelineResult, error) {
	return runTimeline(o, 7, func() resex.Policy { return resex.NewIOShares() })
}

// ---------------------------------------------------------------------------
// Figure 6: Reso depletion and rated capping under FreeMarket.
// ---------------------------------------------------------------------------

// Fig6Result shows per-interval Reso balances and caps for both VMs under
// FreeMarket (derived from the same run shape as Figure 5).
type Fig6Result struct {
	Timeline *TimelineResult
	// Depletion summary.
	IntfMinFraction float64 // lowest balance fraction the interferer hit
	IntfCapEngaged  bool
	RepMinFraction  float64
	Allocation      float64
}

// Title implements Result.
func (r *Fig6Result) Title() string {
	return "Figure 6: Reso balances and rated capping during FreeMarket"
}

// WriteText implements Result.
func (r *Fig6Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n", r.Title())
	fmt.Fprintf(w, "Per-epoch allocation per VM: %.0f Resos\n", r.Allocation)
	fmt.Fprintf(w, "64KB VM minimum balance:  %6.1f%% of allocation (never capped: %v)\n",
		r.RepMinFraction*100, r.Timeline.RepCap.YSummary().Min() >= 100)
	fmt.Fprintf(w, "2MB  VM minimum balance:  %6.1f%% of allocation (cap engaged: %v)\n",
		r.IntfMinFraction*100, r.IntfCapEngaged)
	fmt.Fprintf(w, "\nInterval series (downsampled, balance Resos / cap %%):\n")
	rr := r.Timeline.RepResos.Downsample(20).Points()
	ir := r.Timeline.IntfResos.Downsample(20).Points()
	ic := r.Timeline.IntfCap.Downsample(20).Points()
	fmt.Fprintf(w, "  %-10s %12s %12s %10s\n", "interval", "64KB resos", "2MB resos", "2MB cap%")
	for i := range rr {
		fmt.Fprintf(w, "  %-10.0f %12.0f %12.0f %10.0f\n", rr[i].X, rr[i].Y, ir[i].Y, ic[i].Y)
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	set := stats.NewSeriesSet(r.Title())
	for name, s := range map[string]*stats.Series{
		"rep_resos": r.Timeline.RepResos, "intf_resos": r.Timeline.IntfResos,
		"rep_cap": r.Timeline.RepCap, "intf_cap": r.Timeline.IntfCap,
	} {
		dst := set.Add(name)
		for _, p := range s.Points() {
			dst.Add(p.X, p.Y)
		}
	}
	return set.WriteCSV(w)
}

// Fig6 runs FreeMarket and extracts the Reso-depletion view.
func Fig6(o Options) (*Fig6Result, error) {
	tl, err := Fig5(o)
	if err != nil {
		return nil, err
	}
	alloc := float64(resexDefaultAllocation())
	res := &Fig6Result{Timeline: tl, Allocation: alloc, IntfMinFraction: 1, RepMinFraction: 1}
	for _, p := range tl.IntfResos.Points() {
		if f := p.Y / alloc; f < res.IntfMinFraction {
			res.IntfMinFraction = f
		}
	}
	for _, p := range tl.RepResos.Points() {
		if f := p.Y / alloc; f < res.RepMinFraction {
			res.RepMinFraction = f
		}
	}
	res.IntfCapEngaged = tl.IntfCap.YSummary().Min() < 100
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 8: non-interference cases.
// ---------------------------------------------------------------------------

// Fig8Row is one configuration bar.
type Fig8Row struct {
	Config string
	Mean   float64
	Std    float64
}

// Fig8Result holds all configurations.
type Fig8Result struct{ Rows []Fig8Row }

// Title implements Result.
func (r *Fig8Result) Title() string {
	return "Figure 8: FreeMarket and IOShares on non-interference cases"
}

// WriteText implements Result.
func (r *Fig8Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n", r.Title())
	fmt.Fprintf(w, "%-28s %12s %10s\n", "configuration", "latency(µs)", "std")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-28s %12.1f %10.1f\n", row.Config, row.Mean, row.Std)
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "configuration,latency_us,std_us")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%g,%g\n", row.Config, row.Mean, row.Std)
	}
	return nil
}

// Fig8 runs the paper's five bars: Base, FreeMarket and IOShares with a
// twin 64KB VM, and FreeMarket and IOShares with a quiet 2MB VM (paced to
// 10 requests per epoch).
func Fig8(o Options) (*Fig8Result, error) {
	o = o.WithDefaults()
	type caseDef struct {
		name string
		cfg  ScenarioConfig
	}
	mkFM := func() resex.Policy { return resex.NewFreeMarket() }
	mkIOS := func() resex.Policy { return resex.NewIOShares() }
	quiet := func(p resex.Policy) ScenarioConfig {
		return ScenarioConfig{
			IntfBuffer:   IntfBuffer,
			IntfWindow:   1,
			IntfInterval: 100 * sim.Millisecond, // 10 requests per 1 s epoch
			Policy:       p,
			SLAUs:        BaseSLAUs,
		}
	}
	twin := func(p resex.Policy) ScenarioConfig {
		return ScenarioConfig{
			Reporters: 2, // twin 64KB applications
			Policy:    p,
			SLAUs:     BaseSLAUs,
		}
	}
	cases := []caseDef{
		{"Base-64KB", ScenarioConfig{}},
		{"FM-64KB-64KB", twin(mkFM())},
		{"IOS-64KB-64KB", twin(mkIOS())},
		{"FM-64KB-2MB-NoIntf", quiet(mkFM())},
		{"IOS-64KB-2MB-NoIntf", quiet(mkIOS())},
	}
	var points []SweepPoint[Fig8Row]
	for _, c := range cases {
		c := c
		points = append(points, Point(c.name, func(o Options) (Fig8Row, error) {
			s, err := Build(c.cfg)
			if err != nil {
				return Fig8Row{}, err
			}
			s.RunMeasured(o)
			st := s.RepStats()
			return Fig8Row{Config: c.name, Mean: st.Total.Mean(), Std: st.Total.StdDev()}, nil
		}))
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Rows: rows}, nil
}

// ---------------------------------------------------------------------------
// Figure 9: FreeMarket vs IOShares vs interferer buffer size.
// ---------------------------------------------------------------------------

// Fig9Row is one buffer-size group.
type Fig9Row struct {
	Buffer                     int
	Base, FreeMarket, IOShares float64
}

// Fig9Result holds the sweep.
type Fig9Result struct{ Rows []Fig9Row }

// Title implements Result.
func (r *Fig9Result) Title() string {
	return "Figure 9: FreeMarket and IOShares vs interfering buffer size"
}

// WriteText implements Result.
func (r *Fig9Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n", r.Title())
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "buffer", "Base(µs)", "FreeMarket", "IOShares")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f\n", byteSize(row.Buffer), row.Base, row.FreeMarket, row.IOShares)
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "buffer,base_us,freemarket_us,ioshares_us")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%g,%g,%g\n", row.Buffer, row.Base, row.FreeMarket, row.IOShares)
	}
	return nil
}

// Fig9 sweeps the interferer buffer (64KB–1MB, as in the paper) under no
// policy reference (Base, no interferer), FreeMarket and IOShares.
func Fig9(o Options) (*Fig9Result, error) {
	o = o.WithDefaults()
	runPolicy := func(o Options, buf int, mk func() resex.Policy) (float64, error) {
		s, err := Build(ScenarioConfig{IntfBuffer: buf, Policy: mk(), SLAUs: BaseSLAUs, Seed: o.Seed})
		if err != nil {
			return 0, err
		}
		s.RunMeasured(o)
		return s.RepStats().Total.Mean(), nil
	}
	// Point 0 is the shared Base reference (no interferer); then each buffer
	// contributes a FreeMarket and an IOShares point, in that order.
	points := []SweepPoint[float64]{
		Point("base", func(o Options) (float64, error) {
			s, err := Build(ScenarioConfig{Seed: o.Seed})
			if err != nil {
				return 0, err
			}
			s.RunMeasured(o)
			return s.RepStats().Total.Mean(), nil
		}),
	}
	buffers := []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	for _, buf := range buffers {
		buf := buf
		points = append(points,
			Point("fm-"+byteSize(buf), func(o Options) (float64, error) {
				return runPolicy(o, buf, func() resex.Policy { return resex.NewFreeMarket() })
			}),
			Point("ios-"+byteSize(buf), func(o Options) (float64, error) {
				return runPolicy(o, buf, func() resex.Policy { return resex.NewIOShares() })
			}))
	}
	means, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	for i, buf := range buffers {
		res.Rows = append(res.Rows, Fig9Row{
			Buffer: buf, Base: means[0],
			FreeMarket: means[1+2*i], IOShares: means[2+2*i],
		})
	}
	return res, nil
}

// resexDefaultAllocation returns the 2-VM per-epoch Reso allocation.
func resexDefaultAllocation() resos.Amount {
	return resos.DefaultSupply().Allocation(2)
}
