package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"resex/internal/sim"
	"resex/internal/snapshot"
)

// TestResumeSweepAllDrivers is the crash-restart determinism matrix: every
// registered driver, at two seeds, must produce byte-identical result text
// across (1) an uninterrupted run, (2) a run with a snapshot captured at
// T = warmup + duration/2, and (3) a run restored from that snapshot —
// rebuilt, replayed to T under byte-for-byte state verification, and run to
// the end. This is the same property the CI crash-restart gate diffs on
// resexsim stdout; here it covers the full driver matrix.
func TestResumeSweepAllDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("full driver matrix; skipped in -short")
	}
	seeds := []int64{3, 11}
	dur, warm := 60*sim.Millisecond, 20*sim.Millisecond
	for _, id := range IDs() {
		if id == "abl-restart" {
			// Runs this exact capture/verify loop internally, self-gating,
			// and would triple-nest it here.
			continue
		}
		for _, seed := range seeds {
			id, seed := id, seed
			t.Run(fmt.Sprintf("%s/seed%d", id, seed), func(t *testing.T) {
				t.Parallel()
				entry, err := Lookup(id)
				if err != nil {
					t.Fatal(err)
				}
				run := func(plan *snapshot.Plan) string {
					res, err := entry.Run(Options{
						Duration:   dur,
						Warmup:     warm,
						Seed:       seed,
						Parallel:   2,
						Checkpoint: plan,
					})
					if err != nil {
						t.Fatalf("%s seed %d: %v", id, seed, err)
					}
					var b strings.Builder
					if err := res.WriteText(&b); err != nil {
						t.Fatal(err)
					}
					return b.String()
				}

				base := run(nil)

				capture := snapshot.NewCapture(warm + dur/2)
				if got := run(capture); got != base {
					t.Fatalf("arming the capture breakpoint changed the output:\n--- plain\n%s\n--- captured\n%s", base, got)
				}
				bundle, err := capture.Bundle(snapshot.Meta{
					Kind:       "experiment",
					Experiment: id,
					Seed:       seed,
					DurationNs: int64(dur),
					WarmupNs:   int64(warm),
				})
				if err != nil {
					t.Fatalf("bundle: %v", err)
				}

				// Through the wire format, as resexsim writes it to disk.
				var buf bytes.Buffer
				if err := snapshot.Encode(&buf, bundle); err != nil {
					t.Fatal(err)
				}
				decoded, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}

				verify := snapshot.NewVerify(decoded)
				if got := run(verify); got != base {
					t.Fatalf("restored run's output diverged:\n--- plain\n%s\n--- restored\n%s", base, got)
				}
				if err := verify.Err(); err != nil {
					t.Fatalf("state verification at T failed: %v", err)
				}
			})
		}
	}
}
