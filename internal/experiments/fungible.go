package experiments

import (
	"fmt"
	"io"

	"resex/internal/exchange"
	"resex/internal/resex"
	"resex/internal/resos"
	"resex/internal/sim"
	"resex/internal/workload"
)

// ---------------------------------------------------------------------------
// abl-fungible: the cross-dimension Reso economy (internal/exchange) against
// the paper's pricing families on a heterogeneous fleet.
//
// Two worker hosts with different fabric generations — a full-rate 1 GB/s
// link and a half-rate 500 MB/s link — each carry one latency-sensitive
// closed-loop tenant next to one bursty 2 MB bulk tenant. The sweep drives
// the bulk tenants at 70–95% of their host's link capacity and compares
// latency-SLO attainment under Fungible (congestion-priced entitlement
// pacing), IOShares (reactive latency-blame throttling), and FreeMarket
// (repricing only).
//
// The heterogeneity is what separates the families: the slow host congests
// at half the absolute rate, so a policy that waits for latency elevation
// (IOShares) spends each burst detecting before it throttles, and a policy
// with no throttle at all (FreeMarket) never protects the tenant. Fungible's
// rate board prices the slow fabric as congested the moment demand crowds
// supply, and the pace rule caps the overdrafting bulk spender before the
// victim's windows blow — same actuator, earlier signal.
// ---------------------------------------------------------------------------

// Bulk link-generation split of the heterogeneous fleet.
const (
	fungibleFastBW = 1e9
	fungibleSlowBW = 500e6
)

// AblFungibleRow is one (utilization, policy) cell.
type AblFungibleRow struct {
	// UtilPct is the bulk tenants' offered load as a percent of their
	// host's link capacity.
	UtilPct int
	// Policy is "fungible", "ioshares" or "freemarket".
	Policy string
	// LatP99 is the latency tenants' merged p99 (µs, worst host).
	LatP99 float64
	// AttainPct is the mean time-weighted SLO attainment across the
	// latency-sensitive tenants.
	AttainPct float64
	// BulkMBps is the bulk tenants' combined goodput (MB/s).
	BulkMBps float64
	// Trades and TradedResos count the epoch-settlement activity across
	// both hosts' books (zero for bookless policies).
	Trades int64
	// FabricPrice is the slow host's final fabric quote.
	FabricPrice float64
}

// AblFungibleResult is the fungibility ablation table.
type AblFungibleResult struct {
	Rows []AblFungibleRow
}

// Title implements Result.
func (r *AblFungibleResult) Title() string {
	return "Fungible: SLO attainment vs utilization on a heterogeneous fleet"
}

// WriteText implements Result.
func (r *AblFungibleResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n%-6s %-11s %12s %9s %11s %7s %10s\n", r.Title(),
		"util%", "policy", "lat p99(µs)", "SLO(%)", "bulk(MB/s)", "trades", "slow price")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-11s %12.0f %9.1f %11.1f %7d %10.2f\n",
			row.UtilPct, row.Policy, row.LatP99, row.AttainPct,
			row.BulkMBps, row.Trades, row.FabricPrice)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblFungibleResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "util_pct,policy,lat_p99_us,slo_attain_pct,bulk_mbps,trades,slow_fabric_price")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%s,%g,%g,%g,%d,%g\n",
			row.UtilPct, row.Policy, row.LatP99, row.AttainPct,
			row.BulkMBps, row.Trades, row.FabricPrice)
	}
	return nil
}

// runFungibleCell runs one cell: the two-generation fleet at one bulk
// utilization under one policy.
func runFungibleCell(o Options, utilPct int, policy string) (AblFungibleRow, error) {
	mkPolicy := workloadPolicy(policy)
	if policy == "fungible" {
		// Calibrate each host's board to its own fabric generation: the
		// engine builds policies in worker order, so the closure counts
		// hosts. Capacity is the link's MTUs per 250 ms epoch — utilization
		// and entitlements then reflect what the wire actually carries.
		bws := []float64{fungibleFastBW, fungibleSlowBW}
		next := 0
		mkPolicy = func() resex.Policy {
			p := resex.NewFungible()
			p.Exchange.Capacity[exchange.DimFabric] = resos.Amount(bws[next] * 0.25 / 1024)
			// Quick congestion detection: with 250 ms epochs the default
			// utilization EWMA takes ~4 settlements to register a saturated
			// link; a heavier alpha prices the congestion on the first.
			p.Exchange.Board.Alpha = 0.7
			next++
			return p
		}
	}
	e := workload.New(workload.Config{
		Hosts:          2,
		ClientPCPUs:    16,
		LinkBandwidths: []float64{fungibleFastBW, fungibleSlowBW},
		Policy:         mkPolicy,
	})
	// Tenants round-robin hosts, so the add order interleaves classes:
	// lat0→host1, lat1→host2, bulk0→host1, bulk1→host2.
	// SLAs are priced per hardware class: the half-rate link doubles the
	// 64 KB wire time, so its tenant's SLA and SLO scale by the generation
	// ratio (a flat SLO would be unattainable on the slow host under any
	// policy, flooring every family at the same ceiling).
	var lats, bulks []*workload.Tenant
	for i, bw := range []float64{fungibleFastBW, fungibleSlowBW} {
		gen := fungibleFastBW / bw
		t, err := e.AddTenant(workload.TenantSpec{
			Name:             fmt.Sprintf("lat%d", i),
			Closed:           workload.ClosedLoop{Concurrency: 1},
			SLO:              workload.SLOSpec{P99Us: 1.5 * gen * BaseSLAUs},
			SLAUs:            gen * BaseSLAUs,
			LatencySensitive: true,
			// Latency tenants buy the premium tier: a 3:1 entitlement split
			// prices the bulk mover's pace at a quarter of the link, the
			// margin that keeps 2 MB frames from crowding p99 at the SLO
			// line. The weight applies identically under every family.
			Share: 3,
			Seed:  o.PointSeed + int64(i) + 1,
		})
		if err != nil {
			return AblFungibleRow{}, err
		}
		lats = append(lats, t)
	}
	for i, bw := range []float64{fungibleFastBW, fungibleSlowBW} {
		// Offered bulk load is utilPct percent of the host's link, delivered
		// as 4× bursts: mean = calm·(0.75 + 0.25·4) over 30/10 ms dwells.
		mean := float64(utilPct) / 100 * bw / float64(IntfBuffer)
		calm := mean / 1.75
		t, err := e.AddTenant(workload.TenantSpec{
			Name:       fmt.Sprintf("bulk%d", i),
			BufferSize: IntfBuffer,
			Arrivals: &workload.MMPP2{
				CalmRate: calm, BurstRate: 4 * calm,
				CalmDwell: 30 * sim.Millisecond, BurstDwell: 10 * sim.Millisecond,
			},
			Window:         16,
			ProcessTime:    2 * sim.Millisecond,
			PipelineServer: true,
			Seed:           o.PointSeed + 100 + int64(i),
		})
		if err != nil {
			return AblFungibleRow{}, err
		}
		bulks = append(bulks, t)
	}
	stopAudit := o.auditWorkload(e)
	e.RunMeasured(o.Warmup, o.Duration)
	stopAudit()

	row := AblFungibleRow{UtilPct: utilPct, Policy: policy, FabricPrice: 1}
	for _, t := range lats {
		st := t.Stats()
		row.AttainPct += st.AttainPct / float64(len(lats))
		if st.P99 > row.LatP99 {
			row.LatP99 = st.P99
		}
	}
	for _, t := range bulks {
		row.BulkMBps += t.Stats().CompletedPerSec * float64(IntfBuffer) / 1e6
	}
	if books := booksOf(e.Mgrs); len(books) > 0 {
		for _, bk := range books {
			row.Trades += bk.TradeCount()
		}
		// The slow host is the last worker; its quote is the headline price.
		row.FabricPrice = books[len(books)-1].Board().Price(exchange.DimFabric)
	}
	return row, nil
}

// AblFungible runs the utilization × policy sweep.
func AblFungible(o Options) (*AblFungibleResult, error) {
	o = o.WithDefaults()
	// Measure at steady state for every family: the economy settles per
	// 250 ms epoch, so the default 100 ms warmup would put each policy's
	// convergence transient inside the measured window.
	if o.Warmup < 500*sim.Millisecond {
		o.Warmup = 500 * sim.Millisecond
	}
	var points []SweepPoint[AblFungibleRow]
	for _, util := range []int{70, 80, 90, 95} {
		for _, policy := range []string{"fungible", "ioshares", "freemarket"} {
			util, policy := util, policy
			points = append(points, Point(fmt.Sprintf("%d%% %s", util, policy),
				func(o Options) (AblFungibleRow, error) {
					return runFungibleCell(o, util, policy)
				}))
		}
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblFungibleResult{Rows: rows}, nil
}
