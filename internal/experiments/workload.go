package experiments

import (
	"fmt"
	"io"

	"resex/internal/resex"
	"resex/internal/sim"
	"resex/internal/stats"
	"resex/internal/workload"
)

// ---------------------------------------------------------------------------
// abl-workload: latency vs offered load under FreeMarket vs IOShares.
// abl-workload-mix: mixed tenant classes, SLO attainment per policy.
// abl-workload-burst: burstiness vs tail latency, with and without shedding.
// ---------------------------------------------------------------------------

// workloadPolicy maps a policy label to its constructor (nil = unmanaged).
//
// IOShares runs with its deviation trigger disabled and a longer attribution
// warmup. The paper's closed-loop reporters emit near-constant latency, so
// jitter is evidence of interference there; open-loop Poisson arrivals carry
// inherent jitter (a handful of requests per 1 ms interval), and with it the
// std/mean trigger fires at 30% load, the noisy per-interval MTU counts clear
// the MinShare guard, and two identical tenants cap each other into a death
// spiral. Mean-over-SLA detection is the honest signal for this traffic.
func workloadPolicy(name string) func() resex.Policy {
	switch name {
	case "freemarket":
		return func() resex.Policy { return resex.NewFreeMarket() }
	case "ioshares":
		return func() resex.Policy {
			p := resex.NewIOShares()
			p.UseDeviation = false
			p.WarmupIntervals = 100
			return p
		}
	case "fungible":
		return func() resex.Policy { return resex.NewFungible() }
	}
	return nil
}

// workloadCapacity measures one tenant's saturated completion rate (req/s)
// with a closed-loop run: n tenants at concurrency 8 keep their servers
// pegged, so the per-tenant completion rate is the service capacity the
// open-loop sweeps express offered load against. The calibration runs
// serially before the sweep and depends only on (o.Seed, o.Duration), so the
// sweep's output stays byte-identical at any parallelism.
func workloadCapacity(o Options, n int) (float64, error) {
	e := workload.New(workload.Config{Hosts: 1, ClientPCPUs: 8})
	for i := 0; i < n; i++ {
		if _, err := e.AddTenant(workload.TenantSpec{
			Name:   fmt.Sprintf("cal%d", i),
			Closed: workload.ClosedLoop{Concurrency: 8},
			Seed:   o.Seed + int64(i) + 1,
		}); err != nil {
			return 0, err
		}
	}
	dur := o.Duration
	if dur > 400*sim.Millisecond {
		dur = 400 * sim.Millisecond
	}
	stopAudit := o.auditWorkload(e)
	e.RunMeasured(o.Warmup, dur)
	stopAudit()
	var sum float64
	for _, t := range e.Tenants() {
		sum += t.Stats().CompletedPerSec
	}
	if sum <= 0 {
		return 0, fmt.Errorf("experiments: capacity calibration completed nothing")
	}
	return sum / float64(n), nil
}

// AblWorkloadRow is one (offered load, policy) cell.
type AblWorkloadRow struct {
	// LoadPct is offered load as a percent of calibrated per-tenant capacity.
	LoadPct int
	// Policy is "freemarket" or "ioshares".
	Policy string
	// OfferedPerSec and CompletedPerSec aggregate both tenants.
	OfferedPerSec, CompletedPerSec float64
	// P50, P99, P999 are merged-sketch latency quantiles (µs).
	P50, P99, P999 float64
	// AttainPct is the mean time-weighted SLO attainment across tenants.
	AttainPct float64
}

// AblWorkloadResult is the open-loop hockey stick: two Poisson tenants sweep
// offered load from light traffic past saturation. Because arrivals are open
// loop, load beyond the knee queues instead of self-throttling, and p99
// latency turns the corner the closed-loop benchex client can never show —
// the defining curve of latency-vs-offered-load studies.
type AblWorkloadResult struct {
	// CapacityPerTenant is the calibrated saturation rate (req/s).
	CapacityPerTenant float64
	Rows              []AblWorkloadRow
}

// Title implements Result.
func (r *AblWorkloadResult) Title() string {
	return "Workload: p99 latency vs offered load (open loop)"
}

// WriteText implements Result.
func (r *AblWorkloadResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (capacity %.0f req/s per tenant)\n\n%-6s %-11s %10s %11s %9s %9s %9s %8s\n",
		r.Title(), r.CapacityPerTenant,
		"load%", "policy", "offered/s", "completed/s", "p50(µs)", "p99(µs)", "p999(µs)", "SLO(%)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-11s %10.0f %11.0f %9.0f %9.0f %9.0f %8.1f\n",
			row.LoadPct, row.Policy, row.OfferedPerSec, row.CompletedPerSec,
			row.P50, row.P99, row.P999, row.AttainPct)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblWorkloadResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "load_pct,policy,offered_per_sec,completed_per_sec,p50_us,p99_us,p999_us,slo_attain_pct")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%s,%g,%g,%g,%g,%g,%g\n",
			row.LoadPct, row.Policy, row.OfferedPerSec, row.CompletedPerSec,
			row.P50, row.P99, row.P999, row.AttainPct)
	}
	return nil
}

// workloadSLAUs is the SLA reference handed to ResEx in the open-loop sweep.
// It needs headroom above the light-load baseline (~250 µs p50 with two
// tenants sharing the host): with the bare BaseSLAUs the managers see a
// perpetual marginal violation, attribute it to the biggest sender — one of
// the two symmetric tenants — and throttle the sweep into a death spiral at
// 30% load. With 4× headroom repricing only engages past the knee, where the
// elevation is real.
const workloadSLAUs = 4 * BaseSLAUs

// runWorkloadRow runs one hockey-stick cell: two identical Poisson tenants on
// one managed host, each offered loadPct percent of the calibrated capacity.
func runWorkloadRow(o Options, perTenant float64, loadPct int, policy string) (AblWorkloadRow, error) {
	e := workload.New(workload.Config{Hosts: 1, ClientPCPUs: 8, Policy: workloadPolicy(policy)})
	rate := perTenant * float64(loadPct) / 100
	for i := 0; i < 2; i++ {
		if _, err := e.AddTenant(workload.TenantSpec{
			Name:     fmt.Sprintf("t%d", i),
			Arrivals: workload.Poisson{Rate: rate},
			Window:   8,
			SLO:      workload.SLOSpec{P99Us: workloadSLAUs},
			SLAUs:    workloadSLAUs,
			Seed:     o.PointSeed + int64(i) + 1,
		}); err != nil {
			return AblWorkloadRow{}, err
		}
	}
	stopAudit := o.auditWorkload(e)
	e.RunMeasured(o.Warmup, o.Duration)
	stopAudit()
	row := AblWorkloadRow{LoadPct: loadPct, Policy: policy}
	merged := stats.NewQuantileSketch(0)
	for _, t := range e.Tenants() {
		st := t.Stats()
		row.OfferedPerSec += st.OfferedPerSec
		row.CompletedPerSec += st.CompletedPerSec
		row.AttainPct += st.AttainPct / float64(len(e.Tenants()))
		merged.Merge(t.Sketch())
	}
	row.P50 = merged.Quantile(0.5)
	row.P99 = merged.Quantile(0.99)
	row.P999 = merged.Quantile(0.999)
	return row, nil
}

// AblWorkload runs the load × policy sweep.
func AblWorkload(o Options) (*AblWorkloadResult, error) {
	o = o.WithDefaults()
	perTenant, err := workloadCapacity(o, 2)
	if err != nil {
		return nil, err
	}
	var points []SweepPoint[AblWorkloadRow]
	for _, load := range []int{30, 50, 70, 90, 110} {
		for _, policy := range []string{"freemarket", "ioshares"} {
			load, policy := load, policy
			points = append(points, Point(fmt.Sprintf("%d%% %s", load, policy),
				func(o Options) (AblWorkloadRow, error) {
					return runWorkloadRow(o, perTenant, load, policy)
				}))
		}
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblWorkloadResult{CapacityPerTenant: perTenant, Rows: rows}, nil
}

// AblWorkloadMixRow is one policy's outcome for the mixed-class scenario.
type AblWorkloadMixRow struct {
	// Policy is "none", "freemarket" or "ioshares".
	Policy string
	// LatP99 is the latency-sensitive tenant's p99 (µs).
	LatP99 float64
	// LatAttainPct is its time-weighted SLO attainment.
	LatAttainPct float64
	// LatCompletedPerSec is its completion rate.
	LatCompletedPerSec float64
	// BulkMBps is the bulk tenant's goodput (MB/s).
	BulkMBps float64
}

// AblWorkloadMixResult co-locates a latency-sensitive Poisson tenant with a
// bursty 2 MB bulk tenant on one host and compares policies. Unmanaged, the
// bulk bursts serialize the link and blow the latency tenant's windows;
// FreeMarket reprices but oscillates as its reso depletes; IOShares holds the
// bulk tenant to its share and keeps the latency tenant inside its SLO —
// time-weighted attainment is the paper's headline metric here.
type AblWorkloadMixResult struct {
	Rows []AblWorkloadMixRow
}

// Title implements Result.
func (r *AblWorkloadMixResult) Title() string {
	return "Workload: mixed tenant classes, SLO attainment per policy"
}

// WriteText implements Result.
func (r *AblWorkloadMixResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n%-11s %12s %11s %9s %12s\n", r.Title(),
		"policy", "lat p99(µs)", "lat SLO(%)", "lat/s", "bulk(MB/s)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11s %12.0f %11.1f %9.0f %12.1f\n",
			row.Policy, row.LatP99, row.LatAttainPct, row.LatCompletedPerSec, row.BulkMBps)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblWorkloadMixResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "policy,lat_p99_us,lat_slo_attain_pct,lat_completed_per_sec,bulk_mbps")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%g,%g,%g,%g\n",
			row.Policy, row.LatP99, row.LatAttainPct, row.LatCompletedPerSec, row.BulkMBps)
	}
	return nil
}

// runWorkloadMixRow runs one policy cell of the mixed-class scenario.
//
// The latency tenant is closed loop (the paper's reporter shape): with a
// request always in flight, the in-VM agent's PTime spans client turnaround
// and request transit, so bulk congestion in either fabric direction reaches
// the manager's detection — an open-loop tenant under the idle-aware clock
// only exposes the response direction, and round-robin arbitration keeps that
// component below any usable trigger. Its SLA reference is the paper's
// BaseSLAUs (healthy steady state ~234 µs), and the SLO target sits at 1.5× —
// attainable when the bulk tenant is held to its share, blown when it is not.
func runWorkloadMixRow(o Options, policy string) (AblWorkloadMixRow, error) {
	e := workload.New(workload.Config{Hosts: 1, ClientPCPUs: 8, Policy: workloadPolicy(policy)})
	lat, err := e.AddTenant(workload.TenantSpec{
		Name:             "lat",
		Closed:           workload.ClosedLoop{Concurrency: 1},
		SLO:              workload.SLOSpec{P99Us: 1.5 * BaseSLAUs},
		SLAUs:            BaseSLAUs,
		LatencySensitive: true,
		Seed:             o.PointSeed + 1,
	})
	if err != nil {
		return AblWorkloadMixRow{}, err
	}
	bulk, err := e.AddTenant(workload.TenantSpec{
		Name:       "bulk",
		BufferSize: IntfBuffer,
		Arrivals: &workload.MMPP2{
			CalmRate: 150, BurstRate: 800,
			CalmDwell: 40 * sim.Millisecond, BurstDwell: 10 * sim.Millisecond,
		},
		Window:         16,
		ProcessTime:    2 * sim.Millisecond,
		PipelineServer: true,
		Seed:           o.PointSeed + 999,
	})
	if err != nil {
		return AblWorkloadMixRow{}, err
	}
	stopAudit := o.auditWorkload(e)
	e.RunMeasured(o.Warmup, o.Duration)
	stopAudit()
	lst, bst := lat.Stats(), bulk.Stats()
	return AblWorkloadMixRow{
		Policy:             policy,
		LatP99:             lst.P99,
		LatAttainPct:       lst.AttainPct,
		LatCompletedPerSec: lst.CompletedPerSec,
		BulkMBps:           bst.CompletedPerSec * float64(IntfBuffer) / 1e6,
	}, nil
}

// AblWorkloadMix runs the policy comparison.
func AblWorkloadMix(o Options) (*AblWorkloadMixResult, error) {
	o = o.WithDefaults()
	var points []SweepPoint[AblWorkloadMixRow]
	for _, policy := range []string{"none", "freemarket", "ioshares"} {
		policy := policy
		points = append(points, Point(policy, func(o Options) (AblWorkloadMixRow, error) {
			return runWorkloadMixRow(o, policy)
		}))
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblWorkloadMixResult{Rows: rows}, nil
}

// AblWorkloadBurstRow is one (burst factor, admission) cell.
type AblWorkloadBurstRow struct {
	// Factor is the burst-to-calm rate ratio; mean rate is held constant.
	Factor int
	// Admission is the shedding policy's name.
	Admission string
	// P99 is the admitted requests' p99 latency (µs).
	P99 float64
	// AttainPct is time-weighted SLO attainment.
	AttainPct float64
	// ShedPct is the percentage of arrivals shed.
	ShedPct float64
}

// AblWorkloadBurstResult holds mean offered load at 65% of capacity and
// sweeps how that load is delivered: factor 1 is (nearly) plain Poisson,
// factor 8 packs the same requests into 10 ms bursts at ~1.9× the mean.
// Without admission control the bursts build queues whose drain time shows up
// directly in p99; a small queue cap sheds the excess at the door and keeps
// the tail flat at the cost of a bounded completion loss — the throughput/
// latency trade the admission hook exists to expose.
type AblWorkloadBurstResult struct {
	// MeanRate is the constant mean offered rate (req/s).
	MeanRate float64
	Rows     []AblWorkloadBurstRow
}

// Title implements Result.
func (r *AblWorkloadBurstResult) Title() string {
	return "Workload: SLO attainment vs burstiness, with and without shedding"
}

// WriteText implements Result.
func (r *AblWorkloadBurstResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (mean %.0f req/s)\n\n%-7s %-14s %9s %8s %8s\n",
		r.Title(), r.MeanRate, "factor", "admission", "p99(µs)", "SLO(%)", "shed(%)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-7d %-14s %9.0f %8.1f %8.1f\n",
			row.Factor, row.Admission, row.P99, row.AttainPct, row.ShedPct)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblWorkloadBurstResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "burst_factor,admission,p99_us,slo_attain_pct,shed_pct")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%s,%g,%g,%g\n",
			row.Factor, row.Admission, row.P99, row.AttainPct, row.ShedPct)
	}
	return nil
}

// runWorkloadBurstRow runs one cell: a single tenant whose MMPP2 arrivals
// keep mean rate meanRate while the burst phase runs factor× the calm phase.
func runWorkloadBurstRow(o Options, meanRate float64, factor int, admit workload.Admission) (AblWorkloadBurstRow, error) {
	e := workload.New(workload.Config{Hosts: 1, ClientPCPUs: 8})
	// Dwells are 30 ms calm / 10 ms burst, so mean = calm·(0.75 + 0.25·f).
	calm := meanRate / (0.75 + 0.25*float64(factor))
	tn, err := e.AddTenant(workload.TenantSpec{
		Name: "burst",
		Arrivals: &workload.MMPP2{
			CalmRate: calm, BurstRate: calm * float64(factor),
			CalmDwell: 30 * sim.Millisecond, BurstDwell: 10 * sim.Millisecond,
		},
		Window:    8,
		SLO:       workload.SLOSpec{P99Us: 4 * BaseSLAUs},
		Admission: admit,
		Seed:      o.PointSeed + 1,
	})
	if err != nil {
		return AblWorkloadBurstRow{}, err
	}
	stopAudit := o.auditWorkload(e)
	e.RunMeasured(o.Warmup, o.Duration)
	stopAudit()
	st := tn.Stats()
	row := AblWorkloadBurstRow{
		Factor:    factor,
		Admission: admit.Name(),
		P99:       st.P99,
		AttainPct: st.AttainPct,
	}
	if st.Arrivals > 0 {
		row.ShedPct = 100 * float64(st.Shed) / float64(st.Arrivals)
	}
	return row, nil
}

// AblWorkloadBurst runs the burstiness × admission sweep.
func AblWorkloadBurst(o Options) (*AblWorkloadBurstResult, error) {
	o = o.WithDefaults()
	cap, err := workloadCapacity(o, 1)
	if err != nil {
		return nil, err
	}
	meanRate := 0.65 * cap
	var points []SweepPoint[AblWorkloadBurstRow]
	for _, factor := range []int{1, 2, 4, 8} {
		for _, admit := range []workload.Admission{workload.AdmitAll{}, workload.QueueCap{Max: 32}} {
			factor, admit := factor, admit
			points = append(points, Point(fmt.Sprintf("f=%d %s", factor, admit.Name()),
				func(o Options) (AblWorkloadBurstRow, error) {
					return runWorkloadBurstRow(o, meanRate, factor, admit)
				}))
		}
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblWorkloadBurstResult{MeanRate: meanRate, Rows: rows}, nil
}
