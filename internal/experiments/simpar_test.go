package experiments

import (
	"strings"
	"testing"

	"resex/internal/sim"
)

func runSimPar(t *testing.T, o Options) (*AblSimParResult, string) {
	t.Helper()
	res, err := AblSimPar(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return res, b.String()
}

// TestAblSimParShardInvariance is the tentpole determinism gate at the
// experiment level, on both axes at once: within one table, every row of a
// fleet-size group must be identical except the shards column (the logical
// shard axis changes nothing); and the whole table must be byte-identical
// when re-run with SimShards=4 and Parallel=2 (the worker axes are
// wall-clock knobs only).
func TestAblSimParShardInvariance(t *testing.T) {
	base := Options{Duration: 40 * sim.Millisecond, Warmup: 10 * sim.Millisecond, Seed: 7}
	res, ref := runSimPar(t, base)

	groups := map[int][]AblSimParRow{}
	for _, r := range res.Rows {
		groups[r.Sites] = append(groups[r.Sites], r)
	}
	if len(groups) < 2 {
		t.Fatalf("only %d fleet sizes in %d rows", len(groups), len(res.Rows))
	}
	for sites, rows := range groups {
		if len(rows) != len(simParShardAxis) {
			t.Fatalf("sites=%d swept %d shard counts, want %d", sites, len(rows), len(simParShardAxis))
		}
		first := rows[0]
		for _, r := range rows[1:] {
			norm := r
			norm.Shards = first.Shards
			if norm != first {
				t.Errorf("sites=%d: shards=%d row differs beyond the shards column:\n%+v\nvs\n%+v",
					sites, r.Shards, r, first)
			}
		}
		if first.Windows == 0 || first.Messages == 0 || first.LocalServed == 0 || first.ReplServed == 0 {
			t.Errorf("sites=%d: degenerate row %+v", sites, first)
		}
		if first.LocalMeanUs <= 0 {
			t.Errorf("sites=%d: no local latency signal: %+v", sites, first)
		}
	}

	wide := base
	wide.SimShards = 4
	wide.Parallel = 2
	if _, got := runSimPar(t, wide); got != ref {
		t.Fatalf("SimShards=4/Parallel=2 changed the table:\n--- serial\n%s\n--- wide\n%s", ref, got)
	}
}

// TestBuildSimParFleetShape pins the fleet constructor: one site per node,
// the interconnect delay equal to the published backbone constant and at
// least the coordinator's lookahead, and the shard map covering every site.
func TestBuildSimParFleetShape(t *testing.T) {
	f, err := BuildSimParFleet(4, 2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Co.Shutdown()
	if d := f.Ic.Delay(); d != SimParBackbone {
		t.Errorf("backbone delay = %v, want %v", d, SimParBackbone)
	}
	if f.Co.Lookahead() > f.Ic.Delay() {
		t.Errorf("lookahead %v exceeds backbone delay %v", f.Co.Lookahead(), f.Ic.Delay())
	}
	if n := len(f.Co.Hosts()); n != 4 {
		t.Errorf("coordinator owns %d hosts, want 4", n)
	}
	for _, h := range f.Co.Hosts() {
		if f.Ic.Site(h.ID()) == nil {
			t.Errorf("host %d has no interconnect site", h.ID())
		}
	}
}
