package experiments

import (
	"fmt"
	"io"

	"resex/internal/schedshard"
	"resex/internal/sim"
	"resex/internal/workload"
)

// ---------------------------------------------------------------------------
// abl-scaleset: gang-placed scale-sets through the optimistic multi-shard
// scheduler — the all-or-nothing admission table.
//
// The arrival stream mixes arktos-style scale-sets (N identical VMs that
// must bind atomically; see workload.ScaleSetSpec and
// schedshard.Scheduler.EnqueueGang) with singleton VMs of the abl-placement
// mix. The sweep drives the identical seeded stream through 1..16 logical
// shards in both tie-break modes: more shards mean more optimistic
// collisions, and a colliding gang loses *whole* — every member requeues and
// the gang retries as a unit against the refreshed snapshot. The table's
// SLO is admission: attain% is the fraction of gangs eventually placed, and
// the partial column — gangs observed committed at partial strength — must
// read 0 at every width (the invariant auditor's gang-atomicity predicate
// checks the same thing continuously under -audit).
// ---------------------------------------------------------------------------

// AblScaleSetRow is one (mode, shard count) outcome over the synthetic
// fleet.
type AblScaleSetRow struct {
	// Mode is the score-tie-break policy, exactly as in abl-shardsched:
	// "naive" herds, "avoid" rotates per shard.
	Mode string
	// Shards is the logical shard count (the semantic axis).
	Shards int
	// Rounds is how many propose→merge→commit cycles draining the stream
	// took.
	Rounds uint64
	// Placed and Failed partition the individual binds (gang members and
	// singletons alike).
	Placed int
	Failed int
	// GangsPlaced/GangsFailed/GangsPartial are the scheduler's lifetime gang
	// accounting: placed whole, declared unplaceable, or — the invariant
	// violation this table exists to rule out — committed at partial
	// strength. Partial must be 0 in every row.
	GangsPlaced  uint64
	GangsFailed  uint64
	GangsPartial uint64
	// AttainPct is gang admission attainment: placed gangs over all gangs.
	AttainPct float64
	// Conflicts counts binds rejected at commit (a whole gang rejection
	// counts every member); ConflictPct is conflicts over all proposals.
	Conflicts   uint64
	ConflictPct float64
	// Retries counts requeued requests (conflict losers + starved, gang
	// members individually).
	Retries uint64
	// BindFNV fingerprints the full bind sequence, hex — compared across
	// worker counts and restore paths by the determinism gates.
	BindFNV string
}

// AblScaleSetResult is the admission table across shard counts and modes.
type AblScaleSetResult struct {
	Hosts   int
	Gangs   int
	GangVMs int
	Singles int
	Rows    []AblScaleSetRow
}

// Title implements Result.
func (r *AblScaleSetResult) Title() string {
	return "ScaleSet: gang-placed scale-sets, all-or-nothing admission vs shard count"
}

// WriteText implements Result.
func (r *AblScaleSetResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (%d hosts, %d gangs / %d gang VMs, %d singletons)\n\n%-6s %7s %7s %7s %7s %7s %7s %8s %8s %10s %10s %8s %17s\n",
		r.Title(), r.Hosts, r.Gangs, r.GangVMs, r.Singles,
		"mode", "shards", "rounds", "placed", "failed",
		"gangs+", "gangs-", "partial", "attain%", "conflicts", "conflict%", "retries", "bind-fnv")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6s %7d %7d %7d %7d %7d %7d %8d %8.1f %10d %10.2f %8d %17s\n",
			row.Mode, row.Shards, row.Rounds, row.Placed, row.Failed,
			row.GangsPlaced, row.GangsFailed, row.GangsPartial, row.AttainPct,
			row.Conflicts, row.ConflictPct, row.Retries, row.BindFNV)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblScaleSetResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "mode,shards,rounds,placed,failed,gangs_placed,gangs_failed,gangs_partial,attain_pct,conflicts,conflict_pct,retries,bind_fnv")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%g,%d,%g,%d,%s\n",
			row.Mode, row.Shards, row.Rounds, row.Placed, row.Failed,
			row.GangsPlaced, row.GangsFailed, row.GangsPartial, row.AttainPct,
			row.Conflicts, row.ConflictPct, row.Retries, row.BindFNV)
	}
	return nil
}

// scaleSetScale sizes the synthetic fleet from the run duration, exactly as
// shardSchedScale does: the full 2 s window gets 600 hosts; short CI and
// resume-sweep windows scale down proportionally (floor 64).
func scaleSetScale(o Options) int {
	frac := float64(o.Duration) / float64(2*sim.Second)
	if frac > 1 {
		frac = 1
	}
	hosts := int(600*frac + 0.5)
	if hosts < 64 {
		hosts = 64
	}
	return hosts
}

// scaleSetSizes is the gang-size cycle: small web tiers through chunky
// 24-member batch sets, so rounds carry gangs that fit one host's headroom
// next to gangs that must span several.
var scaleSetSizes = []int{4, 8, 12, 16, 24}

// scaleSetItem is one arrival: a whole scale-set (set != nil) or a
// singleton of the abl-placement mix.
type scaleSetItem struct {
	set    *workload.ScaleSetSpec
	single shardSchedArrival
}

// scaleSetArrivals builds the arrival stream: scale-sets cycling through
// scaleSetSizes (every third one a large-buffer bulk tier) interleaved with
// two singletons each, filling ~80% of the fleet's guest slots, then
// shuffled with the same seed for every sweep point — every (mode, shards)
// cell places the identical stream, so the table isolates the scheduler.
func scaleSetArrivals(hosts int, seed int64) (items []scaleSetItem, gangs, gangVMs, singles int) {
	budget := hosts * shardSchedPCPUs * 4 / 5
	used := 0
	nLS, nBulk := 0, 0
	for used < budget {
		size := scaleSetSizes[gangs%len(scaleSetSizes)]
		set := &workload.ScaleSetSpec{
			Name: fmt.Sprintf("set%d", gangs), Size: size,
			LatencySensitive: true, BufferSize: BaseBuffer,
			BytesPerSec: 2e6, MTUsPerSec: 2e6 / 1024,
		}
		if gangs%3 == 2 {
			set.LatencySensitive = false
			set.BufferSize = IntfBuffer
			set.BytesPerSec, set.MTUsPerSec = 60e6, 60e6/1024
		}
		items = append(items, scaleSetItem{set: set})
		gangs++
		gangVMs += size
		used += size
		for k := 0; k < 2 && used < budget; k++ {
			var a shardSchedArrival
			if singles%4 == 3 {
				spec := schedshard.Spec{Name: fmt.Sprintf("solo-bulk%d", nBulk), BufferSize: IntfBuffer}
				a = shardSchedArrival{spec: spec, vm: schedshard.VMInfo{
					Spec: spec, BytesPerSec: 60e6, MTUsPerSec: 60e6 / 1024, BufferSize: IntfBuffer,
				}}
				nBulk++
			} else {
				spec := schedshard.Spec{Name: fmt.Sprintf("solo-ls%d", nLS), LatencySensitive: true, BufferSize: BaseBuffer}
				a = shardSchedArrival{spec: spec, vm: schedshard.VMInfo{
					Spec: spec, BytesPerSec: 2e6, MTUsPerSec: 2e6 / 1024, BufferSize: BaseBuffer,
				}}
				nLS++
			}
			items = append(items, scaleSetItem{single: a})
			singles++
			used++
		}
	}
	rng := sim.NewRand(seed ^ 0x5ca1e5e7)
	for i := len(items) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
	return items, gangs, gangVMs, singles
}

// runScaleSetPoint drives one (mode, shards) cell, with the same ticked
// wave/drain shape as runShardSchedPoint so the snapshot breakpoint sees a
// mid-drain scheduler.
func runScaleSetPoint(o Options, shards int, avoid bool) (AblScaleSetRow, error) {
	mode := "naive"
	if avoid {
		mode = "avoid"
	}
	hosts := scaleSetScale(o)
	row := AblScaleSetRow{Mode: mode, Shards: shards}

	eng := sim.New()
	store := schedshard.NewStore()
	store.Publish(shardSchedHosts(hosts))
	sched := schedshard.NewScheduler(store, schedshard.Config{
		Shards:         shards,
		Workers:        o.ShardWorkers,
		Seed:           o.Seed,
		AvoidConflicts: avoid,
	})
	stopAudit := o.auditShardSched(eng, sched)

	items, gangs, _, _ := scaleSetArrivals(hosts, o.Seed)
	perWave := (len(items) + shardSchedWaves - 1) / shardSchedWaves
	wave := 0
	enqueueWave := func() {
		// Items are arrival units (a whole gang is one), so the list can be
		// shorter than waves²/waves — clamp both ends.
		lo := wave * perWave
		if lo > len(items) {
			lo = len(items)
		}
		hi := lo + perWave
		if hi > len(items) {
			hi = len(items)
		}
		for _, it := range items[lo:hi] {
			if it.set != nil {
				workload.EnqueueScaleSet(sched, *it.set)
			} else {
				sched.Enqueue(it.single.spec, it.single.vm)
			}
		}
		wave++
	}

	window := o.Warmup + o.Duration
	tick := window / 48
	if tick <= 0 {
		tick = 1
	}
	var step func()
	step = func() {
		if wave < shardSchedWaves {
			enqueueWave()
		}
		sched.Round()
		if wave < shardSchedWaves || sched.PendingLen() > 0 {
			eng.After(tick, step)
		}
	}
	eng.After(tick, step)
	eng.RunUntil(window)
	stopAudit()
	for wave < shardSchedWaves {
		enqueueWave()
		sched.Round()
	}
	sched.Run()
	eng.Shutdown()

	row.Rounds = sched.Rounds()
	row.Placed = len(sched.Bound())
	row.Failed = len(sched.Failed())
	gs := sched.Gangs()
	row.GangsPlaced, row.GangsFailed, row.GangsPartial = gs.Placed, gs.Failed, gs.Partial
	if gangs > 0 {
		row.AttainPct = 100 * float64(gs.Placed) / float64(gangs)
	}
	row.Conflicts = sched.Conflicts()
	if total := uint64(row.Placed) + row.Conflicts; total > 0 {
		row.ConflictPct = 100 * float64(row.Conflicts) / float64(total)
	}
	row.Retries = sched.Retries()
	row.BindFNV = fmt.Sprintf("%016x", sched.BindFNV())
	return row, nil
}

// AblScaleSet runs the (mode × shard count) grid over the gang-heavy
// stream. One logical shard is the serial scheduler — zero conflicts, every
// gang placed first try; the curve shows what gang atomicity costs under
// optimistic concurrency (a 24-member gang is 24 chances to collide and one
// collision requeues all 24) and that the partial column stays pinned at 0
// regardless.
func AblScaleSet(o Options) (*AblScaleSetResult, error) {
	o = o.WithDefaults()
	hosts := scaleSetScale(o)
	_, gangs, gangVMs, singles := scaleSetArrivals(hosts, o.Seed)
	var points []SweepPoint[AblScaleSetRow]
	for _, avoid := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4, 8, 16} {
			avoid, shards := avoid, shards
			mode := "naive"
			if avoid {
				mode = "avoid"
			}
			points = append(points, Point(fmt.Sprintf("%s s=%d", mode, shards),
				func(o Options) (AblScaleSetRow, error) {
					return runScaleSetPoint(o, shards, avoid)
				}))
		}
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblScaleSetResult{Hosts: hosts, Gangs: gangs, GangVMs: gangVMs, Singles: singles, Rows: rows}, nil
}
