package experiments

import (
	"bytes"
	"fmt"
	"io"

	"resex/internal/resex"
	"resex/internal/sim"
	"resex/internal/snapshot"
	"resex/internal/workload"
)

// ---------------------------------------------------------------------------
// abl-restart: crash-restart determinism and mid-run policy flips.
//
// Part one kills the mixed-class scenario at T = warmup + duration/2,
// snapshots it, restores from the snapshot (rebuild + deterministic replay +
// byte-for-byte state verification at T), and runs to the end: the restored
// run's figures must be identical to the uninterrupted run's. The driver
// fails — non-zero exit — if they are not, which is what lets CI gate on it.
//
// Part two exercises the epoch-aligned live policy swap: the same scenario
// under each pure policy, then with FreeMarket flipped to IOShares at T, and
// IOShares dropped to the passive "none" policy at T. The SLO-attainment
// table shows the flipped runs inheriting the tail behaviour of whichever
// policy governs the second half.
// ---------------------------------------------------------------------------

// restartPolicy extends workloadPolicy with the passive "none" policy (still
// managed — telemetry keeps flowing — but charging at rate 1 with caps
// lifted), which the daemon's policy-swap command also uses.
func restartPolicy(name string) func() resex.Policy {
	if name == "none" {
		return func() resex.Policy { return resex.NewPassive() }
	}
	return workloadPolicy(name)
}

// AblRestartRow is one run of the mixed-class scenario.
type AblRestartRow struct {
	// Config labels the run: a phase name for the crash-restart rows, a
	// policy (or "a→b" flip) for the A/B rows.
	Config string
	// LatP99, LatAttainPct, LatCompletedPerSec, BulkMBps mirror the
	// abl-workload-mix columns.
	LatP99             float64
	LatAttainPct       float64
	LatCompletedPerSec float64
	BulkMBps           float64
}

// metrics formats the row's figures without its label, for the byte-compare
// the crash-restart phase gates on.
func (r AblRestartRow) metrics() string {
	return fmt.Sprintf("%.3f %.3f %.3f %.3f",
		r.LatP99, r.LatAttainPct, r.LatCompletedPerSec, r.BulkMBps)
}

// AblRestartResult is the combined crash-restart + policy-flip report.
type AblRestartResult struct {
	// SnapshotAtNs is T, the kill/flip point (virtual ns).
	SnapshotAtNs int64
	// Restart holds the uninterrupted / capture / restore rows.
	Restart []AblRestartRow
	// Identical reports whether all three restart rows agree byte-for-byte
	// and the restore's state verification at T passed.
	Identical bool
	// Flip holds the pure-policy and flipped rows.
	Flip []AblRestartRow
}

// Title implements Result.
func (r *AblRestartResult) Title() string {
	return "Restart: crash-restart determinism and mid-run policy flip"
}

// WriteText implements Result.
func (r *AblRestartResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (T=%s)\n", r.Title(), sim.Time(r.SnapshotAtNs))
	fmt.Fprintf(w, "\ncrash-restart (kill at T, snapshot, restore, run to end):\n")
	fmt.Fprintf(w, "%-21s %12s %11s %9s %12s\n",
		"run", "lat p99(µs)", "lat SLO(%)", "lat/s", "bulk(MB/s)")
	for _, row := range r.Restart {
		fmt.Fprintf(w, "%-21s %12.0f %11.1f %9.0f %12.1f\n",
			row.Config, row.LatP99, row.LatAttainPct, row.LatCompletedPerSec, row.BulkMBps)
	}
	fmt.Fprintf(w, "resume byte-identical to uninterrupted run: %v\n", r.Identical)
	fmt.Fprintf(w, "\npolicy flip at T (epoch-aligned swap):\n")
	fmt.Fprintf(w, "%-21s %12s %11s %9s %12s\n",
		"config", "lat p99(µs)", "lat SLO(%)", "lat/s", "bulk(MB/s)")
	for _, row := range r.Flip {
		fmt.Fprintf(w, "%-21s %12.0f %11.1f %9.0f %12.1f\n",
			row.Config, row.LatP99, row.LatAttainPct, row.LatCompletedPerSec, row.BulkMBps)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblRestartResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "section,config,lat_p99_us,lat_slo_attain_pct,lat_completed_per_sec,bulk_mbps,identical")
	for _, row := range r.Restart {
		fmt.Fprintf(w, "restart,%s,%g,%g,%g,%g,%v\n",
			row.Config, row.LatP99, row.LatAttainPct, row.LatCompletedPerSec, row.BulkMBps, r.Identical)
	}
	for _, row := range r.Flip {
		fmt.Fprintf(w, "flip,%s,%g,%g,%g,%g,\n",
			row.Config, row.LatP99, row.LatAttainPct, row.LatCompletedPerSec, row.BulkMBps)
	}
	return nil
}

// runRestartCell runs the mixed-class scenario (one latency-sensitive
// closed-loop tenant plus one bursty bulk tenant, as abl-workload-mix) under
// the named starting policy. When flipTo is non-empty the managers swap to
// that policy at the first epoch boundary after flipAt, via a seq-neutral
// engine breakpoint — the run is event-identical to an unflipped one up to
// the swap.
func runRestartCell(o Options, label, policy, flipTo string, flipAt sim.Time) (AblRestartRow, error) {
	e := workload.New(workload.Config{Hosts: 1, ClientPCPUs: 8, Policy: restartPolicy(policy)})
	lat, err := e.AddTenant(workload.TenantSpec{
		Name:             "lat",
		Closed:           workload.ClosedLoop{Concurrency: 1},
		SLO:              workload.SLOSpec{P99Us: 1.5 * BaseSLAUs},
		SLAUs:            BaseSLAUs,
		LatencySensitive: true,
		Seed:             o.PointSeed + 1,
	})
	if err != nil {
		return AblRestartRow{}, err
	}
	bulk, err := e.AddTenant(workload.TenantSpec{
		Name:       "bulk",
		BufferSize: IntfBuffer,
		Arrivals: &workload.MMPP2{
			CalmRate: 150, BurstRate: 800,
			CalmDwell: 40 * sim.Millisecond, BurstDwell: 10 * sim.Millisecond,
		},
		Window:         16,
		ProcessTime:    2 * sim.Millisecond,
		PipelineServer: true,
		Seed:           o.PointSeed + 999,
	})
	if err != nil {
		return AblRestartRow{}, err
	}
	if flipTo != "" {
		mk := restartPolicy(flipTo)
		e.TB.Eng.Breakpoint(flipAt, func() {
			for _, m := range e.Mgrs {
				if m != nil {
					m.SwapPolicyAtEpoch(mk())
				}
			}
		})
	}
	stopAudit := o.auditWorkload(e)
	e.RunMeasured(o.Warmup, o.Duration)
	stopAudit()
	lst, bst := lat.Stats(), bulk.Stats()
	return AblRestartRow{
		Config:             label,
		LatP99:             lst.P99,
		LatAttainPct:       lst.AttainPct,
		LatCompletedPerSec: lst.CompletedPerSec,
		BulkMBps:           bst.CompletedPerSec * float64(IntfBuffer) / 1e6,
	}, nil
}

// AblRestart runs both phases. The crash-restart phase is self-checking: a
// state divergence at T, a snapshot that fails to round-trip through the
// codec, or any figure differing between the uninterrupted and restored runs
// is an error, not a footnote.
func AblRestart(o Options) (*AblRestartResult, error) {
	o = o.WithDefaults()
	// All phases replay the same cell, so they must share one point seed.
	o.PointSeed = DeriveSeed(o.Seed, 0)
	at := o.Warmup + o.Duration/2
	res := &AblRestartResult{SnapshotAtNs: int64(at)}

	// Phase 1: uninterrupted reference.
	ref, err := runRestartCell(o, "uninterrupted", "freemarket", "", 0)
	if err != nil {
		return nil, err
	}

	// Phase 2: same run, killed at T — capture a snapshot there. The
	// capture breakpoint is seq-neutral, so this run's figures must equal
	// the reference's.
	oc := o
	oc.Checkpoint = snapshot.NewCapture(at)
	capRow, err := runRestartCell(oc, "capture", "freemarket", "", 0)
	if err != nil {
		return nil, err
	}
	bundle, err := oc.Checkpoint.Bundle(snapshot.Meta{
		Kind:       "experiment",
		Experiment: "abl-restart",
		Seed:       o.Seed,
		DurationNs: int64(o.Duration),
		WarmupNs:   int64(o.Warmup),
		Audit:      o.Audit != nil,
	})
	if err != nil {
		return nil, err
	}

	// The snapshot travels through the wire format, as a real crash-restart
	// would read it from disk.
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, bundle); err != nil {
		return nil, err
	}
	restored, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}

	// Phase 3: restore — rebuild, replay to T under byte-for-byte state
	// verification, continue to the end.
	or := o
	or.Checkpoint = snapshot.NewVerify(restored)
	resRow, err := runRestartCell(or, "restore", "freemarket", "", 0)
	if err != nil {
		return nil, err
	}
	if err := or.Checkpoint.Err(); err != nil {
		return nil, fmt.Errorf("abl-restart: restore diverged: %w", err)
	}
	res.Restart = []AblRestartRow{ref, capRow, resRow}
	res.Identical = ref.metrics() == capRow.metrics() && ref.metrics() == resRow.metrics()
	if !res.Identical {
		return nil, fmt.Errorf("abl-restart: restored run's figures differ from uninterrupted run:\n  %s\n  %s\n  %s",
			ref.metrics(), capRow.metrics(), resRow.metrics())
	}

	// Phase 4: the A/B flip table. Pure policies first, then mid-run swaps.
	flips := []struct{ label, policy, flipTo string }{
		{"none", "none", ""},
		{"freemarket", "freemarket", ""},
		{"ioshares", "ioshares", ""},
		{"freemarket>ioshares", "freemarket", "ioshares"},
		{"ioshares>none", "ioshares", "none"},
	}
	for _, f := range flips {
		if f.label == "freemarket" {
			// Identical cell to the reference run; reuse it.
			res.Flip = append(res.Flip, AblRestartRow{Config: f.label,
				LatP99: ref.LatP99, LatAttainPct: ref.LatAttainPct,
				LatCompletedPerSec: ref.LatCompletedPerSec, BulkMBps: ref.BulkMBps})
			continue
		}
		row, err := runRestartCell(o, f.label, f.policy, f.flipTo, at)
		if err != nil {
			return nil, err
		}
		res.Flip = append(res.Flip, row)
	}
	return res, nil
}
