// Package experiments reproduces every figure of the paper's evaluation
// (Figures 1–9). Each figure has a driver that builds the two-host testbed,
// runs the exact workload and parameter sweep of the paper, and emits the
// same rows/series the figure plots, as text tables and CSV.
//
// Absolute numbers come from a simulator calibrated to the paper's platform
// constants (1 GB/s payload link, 1 KB MTU, ~90 µs per-64KB-request
// processing); the claims being reproduced are the *shapes*: who wins, by
// roughly what factor, and where the crossovers are. EXPERIMENTS.md records
// paper-reported vs measured values side by side.
package experiments

import (
	"fmt"
	"io"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/fabric"
	"resex/internal/ibmon"
	"resex/internal/invariant"
	"resex/internal/resex"
	"resex/internal/sim"
	"resex/internal/snapshot"
)

// BaseBuffer is the reporting VM's buffer size throughout the paper.
const BaseBuffer = 64 << 10

// IntfBuffer is the default interfering VM buffer (2 MB).
const IntfBuffer = 2 << 20

// BaseSLAUs is the reporting app's SLA reference (µs): measured base
// latency (~234 µs) plus a small guard band. See EXPERIMENTS.md for the
// calibration run.
const BaseSLAUs = 240.0

// Options tunes experiment scale.
type Options struct {
	// Duration is the measured portion of each run. The full figures use
	// seconds of virtual time; quick runs (benchmarks, CI) use less.
	// Default 2 s.
	Duration sim.Time
	// Warmup is discarded before measuring. Default 100 ms.
	Warmup sim.Time
	// Timeline retains per-request series (needed by Figures 5–7).
	Timeline bool
	// Seed offsets every workload generator seed, so re-runs with a
	// different seed explore a different (but still fully deterministic)
	// request arrival pattern. Default 0 preserves the historical outputs.
	Seed int64
	// Parallel bounds the worker pool RunSweep uses to execute a figure's
	// independent sweep points. 1 (the default) runs points serially;
	// higher values change wall-clock time only — results are merged in
	// declaration order, so output is byte-identical either way.
	Parallel int
	// PointSeed is set by RunSweep for each sweep point: a splitmix64
	// stream derived from (Seed, point index). Points that want
	// decorrelated randomness may use it instead of offsetting Seed by
	// hand. It is informational for the historical figure drivers, which
	// keep their original Seed arithmetic to preserve recorded outputs.
	PointSeed int64
	// ShardWorkers bounds the goroutines a schedshard scheduler uses to
	// run one placement round's logical shards (resexsim -shards). Like
	// Parallel it is a wall-clock knob only: shard partition, proposal
	// order and the commit merge are all canonical, so output is
	// byte-identical at any width. Default 1.
	ShardWorkers int
	// SimShards bounds the worker goroutines a sharded-simulation
	// coordinator (internal/simpar) uses to run one conservative window's
	// host shards (resexsim -simshards). The third wall-clock-only knob
	// alongside Parallel and ShardWorkers: windows, merge order and
	// message delivery are all canonical, so output — stdout, audit
	// summaries, snapshot bundles — is byte-identical at any width.
	// Drivers without a sharded coordinator ignore it. Default 1.
	SimShards int
	// Audit, when non-nil, attaches a runtime invariant auditor to every
	// engine the experiment builds and merges results into this collector.
	// The auditor is a pure observer: enabling it cannot change any figure
	// output (resexsim -audit; see internal/invariant).
	Audit *invariant.Collector
	// Checkpoint, when non-nil, arms every engine the experiment builds
	// with a seq-neutral snapshot breakpoint at the plan's capture point:
	// capture mode exports full state there, verify mode re-exports and
	// compares against a recorded bundle (resexsim -snapshot / -restore;
	// see internal/snapshot). Like Audit, it is a pure observer.
	Checkpoint *snapshot.Plan
}

// WithDefaults fills zero fields.
func (o Options) WithDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 2 * sim.Second
	}
	if o.Warmup <= 0 {
		o.Warmup = 100 * sim.Millisecond
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	if o.ShardWorkers <= 0 {
		o.ShardWorkers = 1
	}
	if o.SimShards <= 0 {
		o.SimShards = 1
	}
	return o
}

// ScenarioConfig describes one experimental configuration.
type ScenarioConfig struct {
	// Reporters is the number of 64KB reporting applications (Figure 2
	// sweeps 1–3). Default 1.
	Reporters int
	// RepBuffer is the reporting apps' buffer size. Default 64 KB.
	RepBuffer int
	// IntfBuffer adds an interference generator with this buffer size
	// (0 = none).
	IntfBuffer int
	// IntfWindow is the interferer's outstanding-request window. Default 16.
	IntfWindow int
	// IntfInterval paces the interference generator. The default (3.7 ms,
	// i.e. ~270 requests/s) loads the link to ~70% of its contended
	// capacity at the 2 MB buffer — bursts overrun it, gaps drain it — and
	// is negligible at 64 KB, so interference strength scales with buffer
	// size, as in the paper. Figure 8's quiet case overrides this to
	// 100 ms (10 requests per epoch).
	IntfInterval sim.Time
	// IntfProcessTime is the generator's fixed per-request CPU cost.
	// Default 2 ms, independent of buffer size: this is what makes a CPU
	// cap of C% throttle the generator's issue rate to C/100/ProcessTime
	// and therefore its bytes/s to (C/100)·B/ProcessTime — the linear
	// cap→I/O relationship Figures 3–4 establish (cap = 100/BufferRatio
	// equalizes residual interference across buffer sizes).
	IntfProcessTime sim.Time
	// IntfCap statically caps the interfering VM (Figures 3–4); 0 = none.
	IntfCap int
	// Policy enables ResEx with the given pricing policy (nil = no ResEx).
	Policy resex.Policy
	// SLAUs is the latency reference handed to ResEx for the reporting
	// VMs.
	SLAUs float64
	// Discipline overrides link arbitration (ablations).
	Discipline fabric.Discipline
	// Timeline retains per-request records.
	Timeline bool
	// Seed offsets the client generator seeds (see Options.Seed).
	Seed int64
}

// Scenario is a built, startable experiment instance.
type Scenario struct {
	TB        *cluster.Testbed
	Reporters []*cluster.App
	Intf      *cluster.App
	Mgr       *resex.Manager
	Mon       *ibmon.Monitor
	agents    []*benchex.Agent
}

// Build assembles the two-host testbed for a configuration.
func Build(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Reporters <= 0 {
		cfg.Reporters = 1
	}
	if cfg.RepBuffer <= 0 {
		cfg.RepBuffer = BaseBuffer
	}
	if cfg.IntfWindow <= 0 {
		cfg.IntfWindow = 16
	}
	if cfg.IntfInterval <= 0 {
		cfg.IntfInterval = 3700 * sim.Microsecond // ~270 requests/s
	}
	if cfg.IntfProcessTime <= 0 {
		cfg.IntfProcessTime = 2 * sim.Millisecond
	}
	tb := cluster.New(cluster.Config{Discipline: cfg.Discipline})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)
	s := &Scenario{TB: tb}

	if cfg.Policy != nil {
		dom0 := hostA.Dom0VCPU()
		s.Mon = ibmon.New(hostA.HV, dom0, ibmon.Config{})
		s.Mgr = resex.New(tb.Eng, hostA.HV, s.Mon, dom0, cfg.Policy, resex.Config{})
	}

	for i := 0; i < cfg.Reporters; i++ {
		app, err := tb.NewApp(fmt.Sprintf("rep%d", i), hostA, hostB,
			benchex.ServerConfig{BufferSize: cfg.RepBuffer, RecordTimeline: cfg.Timeline},
			benchex.ClientConfig{BufferSize: cfg.RepBuffer, Seed: cfg.Seed + int64(i+1), RecordTimeline: cfg.Timeline})
		if err != nil {
			return nil, err
		}
		s.Reporters = append(s.Reporters, app)
		if s.Mgr != nil {
			if _, err := s.Mgr.Manage(app.ServerVM.Dom, app.Server.SendCQ(), cfg.SLAUs); err != nil {
				return nil, err
			}
			s.agents = append(s.agents,
				benchex.NewAgent(app.Server, app.ServerVM.Dom.ID(), s.Mgr, benchex.AgentConfig{}))
		}
	}

	if cfg.IntfBuffer > 0 {
		intf, err := tb.NewApp("intf", hostA, hostB,
			benchex.ServerConfig{
				BufferSize:        cfg.IntfBuffer,
				ProcessTime:       cfg.IntfProcessTime,
				PipelineResponses: true,
				RecvSlots:         cfg.IntfWindow + 2,
			},
			benchex.ClientConfig{
				BufferSize:     cfg.IntfBuffer,
				Window:         cfg.IntfWindow,
				Interval:       cfg.IntfInterval,
				BurstyArrivals: true,
				Seed:           cfg.Seed + 999,
			})
		if err != nil {
			return nil, err
		}
		s.Intf = intf
		if cfg.IntfCap > 0 {
			intf.ServerVM.Dom.SetCap(cfg.IntfCap)
		}
		if s.Mgr != nil {
			if _, err := s.Mgr.Manage(intf.ServerVM.Dom, intf.Server.SendCQ(), 0); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Start launches every component.
func (s *Scenario) Start() {
	for _, app := range s.Reporters {
		app.Start()
	}
	if s.Intf != nil {
		s.Intf.Start()
	}
	for _, a := range s.agents {
		a.Start()
	}
	if s.Mon != nil {
		s.Mon.Start(s.TB.Eng)
	}
	if s.Mgr != nil {
		s.Mgr.Start()
	}
}

// RunMeasured starts the scenario, runs the warmup (after which statistics
// reset, unless a timeline is being recorded — the timeline figures want
// the convergence transient), then the measured duration, and shuts the
// simulation down.
func (s *Scenario) RunMeasured(o Options) {
	stopAudit := o.auditTestbed(s.TB, s.Mgr)
	s.Start()
	s.TB.Eng.RunUntil(o.Warmup)
	if !o.Timeline {
		for _, app := range s.Reporters {
			app.Server.ResetStats()
			app.Client.ResetStats()
		}
	}
	s.TB.Eng.RunUntil(o.Warmup + o.Duration)
	stopAudit()
	s.Shutdown()
}

// Shutdown stops all processes.
func (s *Scenario) Shutdown() {
	s.TB.Eng.Shutdown()
}

// RepStats returns the first reporting server's statistics.
func (s *Scenario) RepStats() benchex.ServerStats {
	return s.Reporters[0].Server.Stats()
}

// Result is a figure reproduction: a title, text rendering and CSV data.
type Result interface {
	Title() string
	WriteText(w io.Writer) error
	WriteCSV(w io.Writer) error
}
