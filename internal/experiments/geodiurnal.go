package experiments

import (
	"fmt"
	"io"
	"math"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/ibmon"
	"resex/internal/placement"
	"resex/internal/resex"
	"resex/internal/sim"
	"resex/internal/simpar"
	"resex/internal/workload"
)

// ---------------------------------------------------------------------------
// abl-geodiurnal: availability zones with phase-shifted diurnal load over
// the simpar backbone — the rebalancer chases the sun.
//
// Each zone is a single-host site in a replication ring (the abl-simpar
// topology), but its local trading app runs open loop, paced by a Diurnal
// arrival curve whose phase lags the previous zone's by 2π/zones: as
// virtual time advances, the peak walks around the ring like daylight. At
// every telemetry epoch the driver re-paces each zone's client from the
// curve's instantaneous rate and feeds the per-zone pressure vector to a
// placement.SunChaser, whose movable capacity units migrate toward the
// zones under peak — the migration-pressure counters in the table.
//
// Everything workload-identical is keyed by *slot*, the zone's diurnal
// identity: seeds, phases and SLAs follow the slot, while node ids and ring
// positions follow the physical zone index. A global phase shift (the shift
// parameter) rotates which physical zone hosts which slot; because the ring
// is rotation-symmetric, slot s's world is identical under any shift — the
// metamorphic test in geodiurnal_test.go pins that per-slot rows permute
// and the integer fleet totals (received, on-time) do not move. The shard
// axis is the usual simpar contract: byte-identical at any -simshards
// width.
// ---------------------------------------------------------------------------

// geoZones is the experiment's ring size.
const geoZones = 6

// geoMeanRate is each zone's cycle-averaged arrival rate (req/s); geoAmp is
// the diurnal swing around it. At peak a zone offers
// geoMeanRate·(1+geoAmp) 64 KB requests per second.
const (
	geoMeanRate = 1500.0
	geoAmp      = 0.6
)

// geoUnitsPerZone sizes the SunChaser's movable-capacity pool.
const geoUnitsPerZone = 2

// GeoZoneRow is one zone's (slot-keyed) outcome within a cell. Every field
// is either an integer counter or derived from integer counters, so the
// phase-shift metamorphic comparison is exact, not approximate.
type GeoZoneRow struct {
	// Shards is the cell's -simshards axis value; Slot is the zone's diurnal
	// identity (phase -2π·Slot/zones).
	Shards int
	Slot   int
	// Received and OnTime are the zone's local client counters over the
	// measured window; AttainPct = 100·OnTime/Received.
	Received  int64
	OnTime    int64
	AttainPct float64
	// Served and ReplServed are the zone's local and replication-ingest
	// server counters.
	Served     int64
	ReplServed int64
	// Units is how many SunChaser capacity units sit in the zone at the end.
	Units int
}

// AblGeoDiurnalRow is one (shards) cell's fleet summary.
type AblGeoDiurnalRow struct {
	Zones  int
	Shards int
	// Windows/Messages are the conservative coordinator's sync counts.
	Windows  uint64
	Messages uint64
	// Received/OnTime/AttainPct aggregate the local clients fleet-wide.
	Received  int64
	OnTime    int64
	AttainPct float64
	// Moves and Stays are the SunChaser's lifetime rebalance decisions —
	// the migration pressure the walking peak generates.
	Moves int64
	Stays int64
	// FP fingerprints every epoch's slot-ordered counters (hex FNV-1a).
	FP string
	// PerZone carries the cell's slot-keyed rows.
	PerZone []GeoZoneRow
}

// AblGeoDiurnalResult is the shard-count sweep at a fixed ring size.
type AblGeoDiurnalResult struct {
	Zones    int
	PeriodMs float64
	Cells    []AblGeoDiurnalRow
}

// Title implements Result.
func (r *AblGeoDiurnalResult) Title() string {
	return "GeoDiurnal: phase-shifted zones over the simpar backbone, sun-chasing rebalancer"
}

// WriteText implements Result.
func (r *AblGeoDiurnalResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (%d zones, period %.1f ms)\n", r.Title(), r.Zones, r.PeriodMs)
	for _, c := range r.Cells {
		fmt.Fprintf(w, "\nshards=%d windows=%d msgs=%d received=%d ontime=%d attain=%.1f%% moves=%d stays=%d fp=%s\n",
			c.Shards, c.Windows, c.Messages, c.Received, c.OnTime, c.AttainPct, c.Moves, c.Stays, c.FP)
		fmt.Fprintf(w, "  %4s %9s %8s %8s %8s %9s %6s\n",
			"slot", "received", "ontime", "attain%", "served", "repl_srv", "units")
		for _, z := range c.PerZone {
			fmt.Fprintf(w, "  %4d %9d %8d %8.1f %8d %9d %6d\n",
				z.Slot, z.Received, z.OnTime, z.AttainPct, z.Served, z.ReplServed, z.Units)
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblGeoDiurnalResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "shards,slot,received,ontime,attain_pct,served,repl_served,units,windows,messages,moves,stays,fleet_received,fleet_ontime,fp")
	for _, c := range r.Cells {
		for _, z := range c.PerZone {
			fmt.Fprintf(w, "%d,%d,%d,%d,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
				c.Shards, z.Slot, z.Received, z.OnTime, z.AttainPct, z.Served, z.ReplServed, z.Units,
				c.Windows, c.Messages, c.Moves, c.Stays, c.Received, c.OnTime, c.FP)
		}
	}
	return nil
}

// geoZone is one availability zone: a single-host site (the simpar shape)
// whose local app is paced by a slot-keyed diurnal curve.
type geoZone struct {
	slot int
	tb   *cluster.Testbed
	host *cluster.Host
	h    *simpar.Host
	mgr  *resex.Manager
	mon  *ibmon.Monitor

	local   *cluster.App
	agent   *benchex.Agent
	diurnal workload.Diurnal

	replServer *benchex.Server
	replClient *benchex.Client
}

// GeoFleet is a built geo-diurnal ring. Exported for the metamorphic test.
type GeoFleet struct {
	Co     *simpar.Coordinator
	Ic     *simpar.Interconnect
	zones  []*geoZone // physical (ring) order
	slots  []*geoZone // slot order — the canonical iteration order
	chaser *placement.SunChaser

	period sim.Time
	epochD sim.Time
	epoch  uint64
	fp     uint64
}

// geoPeriod derives the compressed day length from the run window: two full
// cycles fit warmup+duration, so the peak walks the whole ring regardless
// of how short the CI window is.
func geoPeriod(o Options) sim.Time {
	p := (o.Warmup + o.Duration) / 2
	if p < 16 {
		p = 16
	}
	return p
}

// BuildGeoFleet assembles the ring. Zone z (node z+1, streaming replication
// to zone z+1 mod zones) hosts slot (z+shift) mod zones: the slot carries
// the diurnal phase, every seed, and the SLA, so shifting the phase
// globally only re-maps slots onto physical zones. Pacing starts at each
// curve's t=0 rate; boundary callbacks re-pace as the day advances.
func BuildGeoFleet(zones, shards, workers, shift int, seed int64, period sim.Time) (*GeoFleet, error) {
	own := placement.NewOwnership(nodesFor(zones), shards)
	co := simpar.New(simpar.Config{
		Lookahead: SimParBackbone,
		Shards:    own.Shards(),
		Workers:   workers,
		ShardOf:   own.ShardOf(),
	})
	f := &GeoFleet{
		Co: co, Ic: simpar.NewInterconnect(co, SimParBackbone),
		slots:  make([]*geoZone, zones),
		chaser: placement.NewSunChaser(zones, geoUnitsPerZone*zones),
		period: period, epochD: period / 16, fp: fnvOffset,
	}
	if f.epochD <= 0 {
		f.epochD = 1
	}

	for i := 0; i < zones; i++ {
		slot := (i + shift) % zones
		tb := cluster.New(cluster.Config{})
		host := tb.AddHost(i + 1)
		z := &geoZone{slot: slot, tb: tb, host: host, h: f.Ic.AddSite(tb, host)}
		z.diurnal = workload.Diurnal{
			MeanRate: geoMeanRate, Amplitude: geoAmp, Period: period,
			Phase: -2 * math.Pi * float64(slot) / float64(zones),
		}

		dom0 := host.Dom0VCPU()
		z.mon = ibmon.New(host.HV, dom0, ibmon.Config{})
		z.mgr = resex.New(tb.Eng, host.HV, z.mon, dom0, resex.NewFreeMarket(), resex.Config{})

		local, err := tb.NewApp(fmt.Sprintf("zone%d-local", slot), host, host,
			benchex.ServerConfig{BufferSize: BaseBuffer},
			benchex.ClientConfig{
				BufferSize: BaseBuffer, Window: 4,
				Interval:        sim.Time(float64(sim.Second) / z.diurnal.RateAt(0)),
				PoissonArrivals: true,
				SLAUs:           BaseSLAUs,
				Seed:            seed + int64(slot)*17 + 1,
			})
		if err != nil {
			return nil, err
		}
		z.local = local
		if _, err := z.mgr.Manage(local.ServerVM.Dom, local.Server.SendCQ(), BaseSLAUs); err != nil {
			return nil, err
		}
		z.agent = benchex.NewAgent(local.Server, local.ServerVM.Dom.ID(), z.mgr, benchex.AgentConfig{})
		f.zones = append(f.zones, z)
		f.slots[slot] = z
	}

	// Replication ring, as in abl-simpar; slot s always streams to slot
	// s+1 regardless of shift, so the ring too is slot-invariant. Seeds and
	// names key by the source slot.
	for i, src := range f.zones {
		dst := f.zones[(i+1)%zones]
		sVM := dst.host.NewVM(fmt.Sprintf("zone%d-repl-in", dst.slot))
		server := benchex.NewServer(dst.tb.Eng, sVM.VCPU, sVM.PD, benchex.ServerConfig{
			Name: fmt.Sprintf("zone%d-repl-srv", dst.slot), BufferSize: simParReplBuffer,
		})
		cVM := src.host.NewVM(fmt.Sprintf("zone%d-repl-out", src.slot))
		client, err := benchex.NewClient(src.tb.Eng, cVM.VCPU, cVM.PD, benchex.ClientConfig{
			Name: fmt.Sprintf("zone%d-repl-cli", src.slot), BufferSize: simParReplBuffer,
			Window: 4, Interval: 250 * sim.Microsecond, PoissonArrivals: true,
			Seed: seed + 7919*int64(src.slot+1),
		})
		if err != nil {
			return nil, err
		}
		sqp, err := server.NewEndpoint()
		if err != nil {
			return nil, err
		}
		if err := cluster.ConnectQPs(sqp, client.Endpoint(), dst.host, src.host); err != nil {
			return nil, err
		}
		if _, err := dst.mgr.Manage(sVM.Dom, server.SendCQ(), 0); err != nil {
			return nil, err
		}
		dst.replServer = server
		src.replClient = client
	}
	return f, nil
}

// start launches every zone and arms the global boundaries: the warmup
// stats reset, and the telemetry epoch that re-paces each zone from its
// curve, rebalances the chaser, and folds the slot-ordered counters into
// the fingerprint. Boundary callbacks run at coordinator barriers — every
// site engine is stopped — so cross-engine mutation (SetInterval, resets)
// is safe, exactly like abl-simpar's.
func (f *GeoFleet) start(o Options) {
	for _, z := range f.zones {
		z.local.Start()
		z.replServer.Start()
		z.replClient.Start()
		z.agent.Start()
		z.mon.Start(z.tb.Eng)
		z.mgr.Start()
	}
	f.Co.At(o.Warmup, func() {
		for _, z := range f.slots {
			z.local.Server.ResetStats()
			z.local.Client.ResetStats()
			z.replServer.ResetStats()
			z.replClient.ResetStats()
		}
	})
	pressure := make([]float64, len(f.slots))
	f.Co.Every(f.epochD, func() bool {
		f.epoch++
		t := sim.Time(f.epoch) * f.epochD
		f.fp = fnvMix(f.fp, f.epoch)
		for s, z := range f.slots {
			rate := z.diurnal.RateAt(t)
			pressure[s] = rate
			z.local.Client.SetInterval(sim.Time(float64(sim.Second) / rate))
		}
		f.chaser.Rebalance(pressure)
		for _, z := range f.slots {
			f.fp = fnvMix(f.fp, uint64(z.local.Server.Stats().Served))
			f.fp = fnvMix(f.fp, uint64(z.local.Client.Stats().Received))
			f.fp = fnvMix(f.fp, uint64(z.local.Client.Stats().OnTime))
			f.fp = fnvMix(f.fp, uint64(z.replServer.Stats().Served))
		}
		for _, n := range f.chaser.ZoneCounts() {
			f.fp = fnvMix(f.fp, uint64(n))
		}
		return true
	})
}

// Row extracts the cell summary and the slot-keyed zone rows.
func (f *GeoFleet) Row(shards int) AblGeoDiurnalRow {
	st := f.Co.Stats()
	row := AblGeoDiurnalRow{
		Zones: len(f.slots), Shards: shards,
		Windows: st.Windows, Messages: st.Messages,
		Moves: f.chaser.Moves(), Stays: f.chaser.Stays(),
	}
	counts := f.chaser.ZoneCounts()
	for s, z := range f.slots {
		cs := z.local.Client.Stats()
		zr := GeoZoneRow{
			Shards: shards, Slot: s,
			Received: cs.Received, OnTime: cs.OnTime,
			Served:     z.local.Server.Stats().Served,
			ReplServed: z.replServer.Stats().Served,
			Units:      counts[s],
		}
		if zr.Received > 0 {
			zr.AttainPct = 100 * float64(zr.OnTime) / float64(zr.Received)
		}
		row.Received += zr.Received
		row.OnTime += zr.OnTime
		row.PerZone = append(row.PerZone, zr)
	}
	if row.Received > 0 {
		row.AttainPct = 100 * float64(row.OnTime) / float64(row.Received)
	}
	fp := f.fp
	fp = fnvMix(fp, uint64(row.Received))
	fp = fnvMix(fp, uint64(row.OnTime))
	fp = fnvMix(fp, row.Messages)
	row.FP = fmt.Sprintf("%016x", fp)
	return row
}

// RunGeoDiurnalCell builds and runs one (zones, shards, shift) cell.
// Exported so the phase-shift metamorphic test can compare cells directly.
func RunGeoDiurnalCell(o Options, zones, shards, shift int) (AblGeoDiurnalRow, error) {
	f, err := BuildGeoFleet(zones, shards, o.SimShards, shift, o.Seed, geoPeriod(o))
	if err != nil {
		return AblGeoDiurnalRow{}, err
	}
	stop := o.auditGeo(f)
	f.start(o)
	f.Co.RunUntil(o.Warmup + o.Duration)
	stop()
	f.Co.Shutdown()
	return f.Row(shards), nil
}

// AblGeoDiurnal sweeps the -simshards axis at the fixed six-zone ring,
// shift 0. As with abl-simpar, every column but the shards one must be
// byte-identical down the table; the CI determinism gate additionally diffs
// whole runs at -simshards 1 vs 8.
func AblGeoDiurnal(o Options) (*AblGeoDiurnalResult, error) {
	o = o.WithDefaults()
	var points []SweepPoint[AblGeoDiurnalRow]
	for _, shards := range simParShardAxis {
		shards := shards
		points = append(points, Point(fmt.Sprintf("s=%d", shards),
			func(o Options) (AblGeoDiurnalRow, error) {
				return RunGeoDiurnalCell(o, geoZones, shards, 0)
			}))
	}
	cells, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblGeoDiurnalResult{
		Zones:    geoZones,
		PeriodMs: float64(geoPeriod(o)) / 1e6,
		Cells:    cells,
	}, nil
}
