package experiments

import (
	"fmt"
	"io"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/ibmon"
	"resex/internal/placement"
	"resex/internal/resex"
	"resex/internal/sim"
	"resex/internal/simpar"
)

// ---------------------------------------------------------------------------
// abl-simpar: conservative host-sharded simulation of a geo-distributed
// fleet — the determinism-across-shard-counts table.
// ---------------------------------------------------------------------------

// SimParBackbone is the inter-site one-way propagation delay, and therefore
// the sharded run's lookahead: every site simulates a full 200 µs of
// virtual time per window before synchronizing. The intra-site fabric
// (100 ns links, 200 ns switch) never constrains the window because it
// never leaves a site's engine — which is what makes host-sharding pay:
// a site's Xen ticks, HCA completions and ResEx epochs are thousands of
// events per window, all shard-local.
const SimParBackbone = 200 * sim.Microsecond

// simParEpoch is the fleet telemetry period: a global boundary at which
// the coordinator samples every site's counters into the run fingerprint.
const simParEpoch = 2 * sim.Millisecond

// simParReplBuffer is the cross-site replication request size.
const simParReplBuffer = 8 << 10

// AblSimParRow is one (fleet size, shard count) cell. Every column except
// Shards is byte-identical down a fleet-size group — the shard partition is
// a wall-clock knob, and this table is the visible proof: windows, message
// counts, per-site totals and the epoch-sampled fingerprint must not move.
type AblSimParRow struct {
	// Sites is the fleet size: geo-distributed sites, each a full host
	// (Xen + HCA + ResEx + IBMon) on its own engine.
	Sites int
	// Shards is the logical shard count the site population is partitioned
	// into (the -simshards axis; workers are bounded by Options.SimShards).
	Shards int
	// Windows and Boundaries are the coordinator's conservative sync
	// counts; Messages is the cross-site deliveries merged (packets, acks).
	Windows    uint64
	Boundaries uint64
	Messages   uint64
	// Steps is the fleet-total executed event count.
	Steps uint64
	// LocalServed and ReplServed total the intra-site trading requests and
	// the cross-site replication requests completed in the measured window.
	LocalServed int64
	ReplServed  int64
	// LocalMeanUs is the fleet-mean intra-site request latency (µs).
	LocalMeanUs float64
	// FP fingerprints every telemetry epoch's per-site counters (hex
	// FNV-1a). Equal fingerprints mean the runs agreed at every 2 ms
	// boundary, not just at the end.
	FP string
}

// AblSimParResult is the (fleet size × shard count) grid.
type AblSimParResult struct {
	LookaheadUs float64
	Rows        []AblSimParRow
}

// Title implements Result.
func (r *AblSimParResult) Title() string {
	return "SimPar: host-sharded conservative simulation, determinism across shard counts"
}

// WriteText implements Result.
func (r *AblSimParResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (lookahead %.0f µs)\n\n%5s %6s %8s %8s %9s %10s %12s %11s %13s %17s\n",
		r.Title(), r.LookaheadUs,
		"sites", "shards", "windows", "bounds", "msgs", "steps",
		"local_srv", "repl_srv", "local_mean_us", "epoch-fnv")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5d %6d %8d %8d %9d %10d %12d %11d %13.1f %17s\n",
			row.Sites, row.Shards, row.Windows, row.Boundaries, row.Messages,
			row.Steps, row.LocalServed, row.ReplServed, row.LocalMeanUs, row.FP)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblSimParResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "sites,shards,windows,boundaries,messages,steps,local_served,repl_served,local_mean_us,epoch_fnv")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%g,%s\n",
			row.Sites, row.Shards, row.Windows, row.Boundaries, row.Messages,
			row.Steps, row.LocalServed, row.ReplServed, row.LocalMeanUs, row.FP)
	}
	return nil
}

// simParSite is one geo site: a single-host testbed with its own engine,
// manager and monitor, a local trading app, and its half of two
// replication streams (serving the previous site, streaming to the next).
type simParSite struct {
	tb    *cluster.Testbed
	host  *cluster.Host
	h     *simpar.Host
	mgr   *resex.Manager
	mon   *ibmon.Monitor
	local *cluster.App
	agent *benchex.Agent

	replServer *benchex.Server // serves site (i-1)'s stream
	replClient *benchex.Client // streams to site (i+1)
}

// SimParFleet is a built geo-fleet: the coordinator, the backbone, and the
// per-site rigs. Exported so BenchmarkSimPar can drive the identical
// scenario it reports on.
type SimParFleet struct {
	Co    *simpar.Coordinator
	Ic    *simpar.Interconnect
	sites []*simParSite

	epoch uint64
	fp    uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a accumulator, bytewise.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// BuildSimParFleet assembles sites single-host testbeds in a ring, joined
// by a 200 µs backbone, partitioned into shards run by at most workers
// goroutines. Per site: a closed-loop 64 KB local trading app (server and
// client VMs on the same host, traffic hairpinned through the site
// switch), a FreeMarket ResEx manager + IBMon over the site's domains, a
// paced 8 KB replication stream to the next site, and the serving end of
// the previous site's stream. Seeding depends only on (seed, site), never
// on the shard axis, so every (sites, shards) cell simulates the identical
// fleet.
func BuildSimParFleet(sites, shards, workers int, seed int64) (*SimParFleet, error) {
	own := placement.NewOwnership(nodesFor(sites), shards)
	co := simpar.New(simpar.Config{
		Lookahead: SimParBackbone,
		Shards:    own.Shards(),
		Workers:   workers,
		ShardOf:   own.ShardOf(),
	})
	f := &SimParFleet{Co: co, Ic: simpar.NewInterconnect(co, SimParBackbone), fp: fnvOffset}

	for i := 0; i < sites; i++ {
		node := i + 1
		tb := cluster.New(cluster.Config{})
		host := tb.AddHost(node)
		s := &simParSite{tb: tb, host: host, h: f.Ic.AddSite(tb, host)}

		dom0 := host.Dom0VCPU()
		s.mon = ibmon.New(host.HV, dom0, ibmon.Config{})
		s.mgr = resex.New(tb.Eng, host.HV, s.mon, dom0, resex.NewFreeMarket(), resex.Config{})

		local, err := tb.NewApp(fmt.Sprintf("site%d-local", node), host, host,
			benchex.ServerConfig{BufferSize: BaseBuffer},
			benchex.ClientConfig{BufferSize: BaseBuffer, Seed: seed + int64(node)*17})
		if err != nil {
			return nil, err
		}
		s.local = local
		if _, err := s.mgr.Manage(local.ServerVM.Dom, local.Server.SendCQ(), BaseSLAUs); err != nil {
			return nil, err
		}
		s.agent = benchex.NewAgent(local.Server, local.ServerVM.Dom.ID(), s.mgr, benchex.AgentConfig{})
		f.sites = append(f.sites, s)
	}

	// Replication ring: site i streams to site (i+1) mod sites. The VM
	// pair spans two testbeds, so it is assembled by hand — each end on
	// its own engine, joined only by QP numbers and the backbone.
	for i, src := range f.sites {
		dst := f.sites[(i+1)%sites]
		sVM := dst.host.NewVM(fmt.Sprintf("site%d-repl-in", dst.host.Node))
		server := benchex.NewServer(dst.tb.Eng, sVM.VCPU, sVM.PD, benchex.ServerConfig{
			Name: fmt.Sprintf("site%d-repl-srv", dst.host.Node), BufferSize: simParReplBuffer,
		})
		cVM := src.host.NewVM(fmt.Sprintf("site%d-repl-out", src.host.Node))
		client, err := benchex.NewClient(src.tb.Eng, cVM.VCPU, cVM.PD, benchex.ClientConfig{
			Name: fmt.Sprintf("site%d-repl-cli", src.host.Node), BufferSize: simParReplBuffer,
			Window: 4, Interval: 250 * sim.Microsecond, PoissonArrivals: true,
			Seed: seed + 7919*int64(src.host.Node),
		})
		if err != nil {
			return nil, err
		}
		sqp, err := server.NewEndpoint()
		if err != nil {
			return nil, err
		}
		if err := cluster.ConnectQPs(sqp, client.Endpoint(), dst.host, src.host); err != nil {
			return nil, err
		}
		if _, err := dst.mgr.Manage(sVM.Dom, server.SendCQ(), 0); err != nil {
			return nil, err
		}
		dst.replServer = server
		src.replClient = client
	}
	return f, nil
}

// nodesFor lists the fleet's node ids (1..n) for the ownership map.
func nodesFor(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i + 1
	}
	return nodes
}

// start launches every site's components and arms the global boundaries:
// the warmup stats reset and the telemetry epoch.
func (f *SimParFleet) start(o Options) {
	for _, s := range f.sites {
		s.local.Start()
		s.replServer.Start()
		s.replClient.Start()
		s.agent.Start()
		s.mon.Start(s.tb.Eng)
		s.mgr.Start()
	}
	f.Co.At(o.Warmup, func() {
		for _, s := range f.sites {
			s.local.Server.ResetStats()
			s.local.Client.ResetStats()
			s.replServer.ResetStats()
			s.replClient.ResetStats()
		}
	})
	f.Co.Every(simParEpoch, func() bool {
		f.epoch++
		f.fp = fnvMix(f.fp, f.epoch)
		for _, s := range f.sites {
			f.fp = fnvMix(f.fp, uint64(s.local.Server.Stats().Served))
			f.fp = fnvMix(f.fp, uint64(s.local.Client.Stats().Received))
			f.fp = fnvMix(f.fp, uint64(s.replServer.Stats().Served))
		}
		return true
	})
}

// Run drives the fleet through warmup plus the measured window and shuts
// it down (worker pool included).
func (f *SimParFleet) Run(o Options) {
	f.start(o)
	f.Co.RunUntil(o.Warmup + o.Duration)
	f.Co.Shutdown()
}

// Row extracts the deterministic cell for the result table (exported so
// BenchmarkSimPar can report the fingerprint of the runs it times).
func (f *SimParFleet) Row(sites, shards int) AblSimParRow {
	st := f.Co.Stats()
	row := AblSimParRow{
		Sites: sites, Shards: shards,
		Windows: st.Windows, Boundaries: st.Boundaries, Messages: st.Messages,
		Steps: f.Co.Steps(),
	}
	var lat float64
	var n int64
	for _, s := range f.sites {
		row.LocalServed += s.local.Server.Stats().Served
		row.ReplServed += s.replServer.Stats().Served
		cs := s.local.Client.Stats()
		lat += cs.Latency.Sum()
		n += cs.Latency.Count()
	}
	if n > 0 {
		row.LocalMeanUs = lat / float64(n)
	}
	fp := f.fp
	fp = fnvMix(fp, uint64(row.LocalServed))
	fp = fnvMix(fp, uint64(row.ReplServed))
	fp = fnvMix(fp, row.Messages)
	row.FP = fmt.Sprintf("%016x", fp)
	return row
}

// simParSizes is the fleet-size axis, scaled down for short CI windows
// (every site is a full simulated host, so the 2 s figure run affords a
// larger fleet than a 150 ms smoke run).
func simParSizes(o Options) []int {
	if o.Duration >= sim.Second {
		return []int{2, 4, 8, 16}
	}
	return []int{2, 4, 8}
}

// simParShardAxis is the logical shard counts swept for every fleet size.
var simParShardAxis = []int{1, 2, 4, 8}

// runSimParPoint builds, runs and reads one (sites, shards) cell.
func runSimParPoint(o Options, sites, shards int) (AblSimParRow, error) {
	f, err := BuildSimParFleet(sites, shards, o.SimShards, o.Seed)
	if err != nil {
		return AblSimParRow{}, err
	}
	stop := o.auditSimPar(f)
	f.start(o)
	f.Co.RunUntil(o.Warmup + o.Duration)
	stop()
	f.Co.Shutdown()
	return f.Row(sites, shards), nil
}

// AblSimPar runs the (fleet size × shard count) grid. The shard axis is
// the point of the experiment: within a fleet-size group every row must be
// identical except the shards column, because the partition only decides
// which worker executes which host — never what the hosts compute. The
// seed feeding each cell depends on the fleet size alone, making the
// grouped rows directly comparable; the CI determinism gate additionally
// diffs whole runs at -simshards 1 vs 8.
func AblSimPar(o Options) (*AblSimParResult, error) {
	o = o.WithDefaults()
	var points []SweepPoint[AblSimParRow]
	for _, sites := range simParSizes(o) {
		for _, shards := range simParShardAxis {
			sites, shards := sites, shards
			points = append(points, Point(fmt.Sprintf("n=%d s=%d", sites, shards),
				func(o Options) (AblSimParRow, error) {
					return runSimParPoint(o, sites, shards)
				}))
		}
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblSimParResult{LookaheadUs: float64(SimParBackbone) / 1e3, Rows: rows}, nil
}
