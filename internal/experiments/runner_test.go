package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"resex/internal/sim"
)

// sleepPoint returns a point that records nothing but takes real time, to
// force overlap between workers.
func sleepPoint(i int) SweepPoint[int] {
	return Point(fmt.Sprintf("p%d", i), func(o Options) (int, error) {
		time.Sleep(time.Duration(5-i%3) * time.Millisecond)
		return i * i, nil
	})
}

func TestRunSweepOrderPreserved(t *testing.T) {
	var points []SweepPoint[int]
	for i := 0; i < 12; i++ {
		points = append(points, sleepPoint(i))
	}
	for _, par := range []int{1, 4, 32} {
		got, err := RunSweep(Options{Parallel: par}, points)
		if err != nil {
			t.Fatalf("Parallel=%d: %v", par, err)
		}
		if len(got) != 12 {
			t.Fatalf("Parallel=%d: %d results, want 12", par, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("Parallel=%d: result[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestRunSweepErrorDeclaredOrder(t *testing.T) {
	errA := errors.New("a failed")
	errB := errors.New("b failed")
	points := []SweepPoint[int]{
		Point("ok", func(o Options) (int, error) { return 1, nil }),
		Point("a", func(o Options) (int, error) {
			time.Sleep(10 * time.Millisecond) // fails *later* in wall time...
			return 0, errA
		}),
		Point("b", func(o Options) (int, error) { return 0, errB }),
	}
	for _, par := range []int{1, 3} {
		_, err := RunSweep(Options{Parallel: par}, points)
		// ...but the declared-order error wins, matching the serial loop.
		if err != errA {
			t.Errorf("Parallel=%d: err = %v, want %v", par, err, errA)
		}
	}
}

func TestRunSweepPointOptions(t *testing.T) {
	base := Options{Seed: 42, Parallel: 8}
	var seen []Options
	var points []SweepPoint[Options]
	for i := 0; i < 4; i++ {
		points = append(points, Point(fmt.Sprintf("p%d", i),
			func(o Options) (Options, error) { return o, nil }))
	}
	got, err := RunSweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	seen = got
	for i, o := range seen {
		if o.Parallel != 1 {
			t.Errorf("point %d: Parallel = %d, want 1 (points are leaves)", i, o.Parallel)
		}
		if o.Seed != 42 {
			t.Errorf("point %d: Seed = %d, want base seed 42", i, o.Seed)
		}
		if o.PointSeed != DeriveSeed(42, i) {
			t.Errorf("point %d: PointSeed = %d, want DeriveSeed(42,%d)", i, o.PointSeed, i)
		}
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, base := range []int64{0, 1, 2, 42, -7} {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at base=%d i=%d: %d", base, i, s)
			}
			seen[s] = true
			if s2 := DeriveSeed(base, i); s2 != s {
				t.Fatalf("DeriveSeed not deterministic: %d vs %d", s, s2)
			}
		}
	}
}

// TestParallelByteIdentity is the sweep runner's core contract at the figure
// level: the same experiment rendered from a serial run and from a 4-worker
// run must be byte-identical. CI checks the same property across every
// registered experiment via `resexsim -all -parallel {1,8}`.
func TestParallelByteIdentity(t *testing.T) {
	small := Options{Duration: 100 * sim.Millisecond, Warmup: 25 * sim.Millisecond, Seed: 7}
	for _, id := range []string{"fig3", "abl-capacity"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		render := func(par int) (string, string) {
			o := small
			o.Parallel = par
			r, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s Parallel=%d: %v", id, par, err)
			}
			var txt, csv strings.Builder
			if err := r.WriteText(&txt); err != nil {
				t.Fatalf("%s WriteText: %v", id, err)
			}
			if err := r.WriteCSV(&csv); err != nil {
				t.Fatalf("%s WriteCSV: %v", id, err)
			}
			return txt.String(), csv.String()
		}
		txt1, csv1 := render(1)
		txt4, csv4 := render(4)
		if txt1 != txt4 {
			t.Errorf("%s: text output differs between Parallel=1 and Parallel=4", id)
		}
		if csv1 != csv4 {
			t.Errorf("%s: CSV output differs between Parallel=1 and Parallel=4", id)
		}
	}
}
