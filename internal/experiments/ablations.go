package experiments

import (
	"fmt"
	"io"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/fabric"
	"resex/internal/stats"
)

// Ablation experiments probe design choices the paper leaves implicit.
// They are registered alongside the figures (ids "abl-arb", "abl-mech",
// "abl-events", "abl-capacity") and have bench equivalents in
// bench_test.go.

// ---------------------------------------------------------------------------
// abl-arb: link arbitration discipline.
// ---------------------------------------------------------------------------

// AblArbRow is one discipline's victim measurement.
type AblArbRow struct {
	Discipline string
	Mean, P99  float64
}

// AblArbResult compares per-MTU round-robin vs FIFO arbitration.
type AblArbResult struct{ Rows []AblArbRow }

// Title implements Result.
func (r *AblArbResult) Title() string {
	return "Ablation: link arbitration discipline under 2MB interference"
}

// WriteText implements Result.
func (r *AblArbResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n%-12s %12s %12s\n", r.Title(), "discipline", "mean(µs)", "p99(µs)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12.1f %12.1f\n", row.Discipline, row.Mean, row.P99)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblArbResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "discipline,mean_us,p99_us")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%g,%g\n", row.Discipline, row.Mean, row.P99)
	}
	return nil
}

// AblArb measures how much of the platform's latency tolerance comes from
// VL-style round-robin arbitration rather than from ResEx.
func AblArb(o Options) (*AblArbResult, error) {
	o = o.WithDefaults()
	var points []SweepPoint[AblArbRow]
	for _, disc := range []fabric.Discipline{fabric.RoundRobin, fabric.FIFO} {
		disc := disc
		points = append(points, Point(disc.String(), func(o Options) (AblArbRow, error) {
			s, err := Build(ScenarioConfig{IntfBuffer: IntfBuffer, Discipline: disc, Timeline: true, Seed: o.Seed})
			if err != nil {
				return AblArbRow{}, err
			}
			s.RunMeasured(o)
			st := s.RepStats()
			sample := stats.NewSample(int(st.Served))
			for _, rec := range st.Timeline {
				sample.Add(rec.Total().Microseconds())
			}
			return AblArbRow{
				Discipline: disc.String(),
				Mean:       st.Total.Mean(),
				P99:        sample.Quantile(0.99),
			}, nil
		}))
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblArbResult{Rows: rows}, nil
}

// ---------------------------------------------------------------------------
// abl-mech: CPU caps vs NIC per-flow rate limits.
// ---------------------------------------------------------------------------

// AblMechRow is one mechanism's outcome.
type AblMechRow struct {
	Mechanism  string
	VictimMean float64
	IntfCPU    float64 // seconds of CPU the interferer got
	IntfMBs    float64 // interferer egress throughput
}

// AblMechResult compares the hypervisor's only lever (CPU caps) against
// direct NIC rate limiting.
type AblMechResult struct{ Rows []AblMechRow }

// Title implements Result.
func (r *AblMechResult) Title() string {
	return "Ablation: CPU cap vs NIC rate limit as the throttling mechanism"
}

// WriteText implements Result.
func (r *AblMechResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n%-16s %12s %12s %14s\n", r.Title(), "mechanism", "victim(µs)", "intf CPU(s)", "intf MB/s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %12.1f %12.4f %14.1f\n", row.Mechanism, row.VictimMean, row.IntfCPU, row.IntfMBs)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblMechResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "mechanism,victim_us,intf_cpu_s,intf_mb_s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%g,%g,%g\n", row.Mechanism, row.VictimMean, row.IntfCPU, row.IntfMBs)
	}
	return nil
}

// AblMech runs the 2MB interference scenario unthrottled, CPU-capped at 3%,
// and NIC-limited to 30 MB/s.
func AblMech(o Options) (*AblMechResult, error) {
	o = o.WithDefaults()
	mk := func(name string, prep func(*Scenario)) SweepPoint[AblMechRow] {
		return Point(name, func(o Options) (AblMechRow, error) {
			s, err := Build(ScenarioConfig{IntfBuffer: IntfBuffer, Seed: o.Seed})
			if err != nil {
				return AblMechRow{}, err
			}
			prep(s)
			s.RunMeasured(o)
			bytes := float64(s.Intf.Server.Stats().Served) * float64(IntfBuffer)
			return AblMechRow{
				Mechanism:  name,
				VictimMean: s.RepStats().Total.Mean(),
				IntfCPU:    s.Intf.ServerVM.Dom.CPUTime().Seconds(),
				IntfMBs:    bytes / o.Duration.Seconds() / 1e6,
			}, nil
		})
	}
	rows, err := RunSweep(o, []SweepPoint[AblMechRow]{
		mk("none", func(*Scenario) {}),
		mk("cpu-cap-3", func(s *Scenario) { s.Intf.ServerVM.Dom.SetCap(3) }),
		mk("nic-30MBps", func(s *Scenario) { s.Intf.ServerQP.SetRateLimit(30e6) }),
	})
	if err != nil {
		return nil, err
	}
	return &AblMechResult{Rows: rows}, nil
}

// ---------------------------------------------------------------------------
// abl-events: busy-polling vs event-driven completions under a CPU cap.
// ---------------------------------------------------------------------------

// AblEventsRow is one completion mode's outcome at one cap.
type AblEventsRow struct {
	Mode    string
	Cap     int
	Mean    float64
	ReqPerS float64
}

// AblEventsResult compares completion modes across caps.
type AblEventsResult struct{ Rows []AblEventsRow }

// Title implements Result.
func (r *AblEventsResult) Title() string {
	return "Ablation: busy-polling vs event-driven completions under CPU caps"
}

// WriteText implements Result.
func (r *AblEventsResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n%-10s %-6s %12s %12s\n", r.Title(), "mode", "cap%", "latency(µs)", "req/s")
	for _, row := range r.Rows {
		cap := fmt.Sprintf("%d", row.Cap)
		if row.Cap == 0 {
			cap = "-"
		}
		fmt.Fprintf(w, "%-10s %-6s %12.1f %12.0f\n", row.Mode, cap, row.Mean, row.ReqPerS)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblEventsResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "mode,cap_pct,latency_us,req_per_s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%d,%g,%g\n", row.Mode, row.Cap, row.Mean, row.ReqPerS)
	}
	return nil
}

// AblEvents sweeps caps {0, 25, 10} over the two completion modes of a
// pipelined 64KB server.
func AblEvents(o Options) (*AblEventsResult, error) {
	o = o.WithDefaults()
	var points []SweepPoint[AblEventsRow]
	for _, mode := range []bool{false, true} {
		for _, cap := range []int{0, 25, 10} {
			mode, cap := mode, cap
			name := "polling"
			if mode {
				name = "events"
			}
			points = append(points, Point(fmt.Sprintf("%s cap=%d", name, cap),
				func(o Options) (AblEventsRow, error) {
					tb := cluster.New(cluster.Config{})
					hostA, hostB := tb.AddHost(1), tb.AddHost(2)
					app, err := tb.NewApp("app", hostA, hostB,
						benchex.ServerConfig{BufferSize: 64 << 10, EventDriven: mode},
						benchex.ClientConfig{BufferSize: 64 << 10, Window: 4, Seed: o.Seed + 1})
					if err != nil {
						return AblEventsRow{}, err
					}
					if cap > 0 {
						app.ServerVM.Dom.SetCap(cap)
					}
					stopAudit := o.auditTestbed(tb)
					app.Start()
					tb.Eng.RunUntil(o.Duration)
					stopAudit()
					st := app.Server.Stats()
					row := AblEventsRow{
						Mode: name, Cap: cap, Mean: st.Total.Mean(),
						ReqPerS: float64(st.Served) / o.Duration.Seconds(),
					}
					tb.Eng.Shutdown()
					return row, nil
				}))
		}
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblEventsResult{Rows: rows}, nil
}

// ---------------------------------------------------------------------------
// abl-capacity: consolidation density within an SLA.
// ---------------------------------------------------------------------------

// AblCapacityRow is the worst latency at a given density.
type AblCapacityRow struct {
	Apps      int
	WorstMean float64
	WithinSLA bool
}

// AblCapacityResult is the paper's motivating consolidation question made
// quantitative: how many latency-sensitive apps fit per host?
type AblCapacityResult struct {
	SLA  float64
	Rows []AblCapacityRow
}

// Title implements Result.
func (r *AblCapacityResult) Title() string {
	return "Ablation: consolidation density of latency-sensitive applications"
}

// WriteText implements Result.
func (r *AblCapacityResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (SLA %.0f µs)\n\n%-6s %14s %10s\n", r.Title(), r.SLA, "apps", "worst(µs)", "in SLA")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %14.1f %10v\n", row.Apps, row.WorstMean, row.WithinSLA)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblCapacityResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "apps,worst_mean_us,within_sla")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%g,%v\n", row.Apps, row.WorstMean, row.WithinSLA)
	}
	return nil
}

// AblCapacity packs 1..6 identical 64KB apps onto host A and reports the
// worst per-app mean latency at each density.
func AblCapacity(o Options) (*AblCapacityResult, error) {
	o = o.WithDefaults()
	const sla = 233.5 * 1.25
	var points []SweepPoint[AblCapacityRow]
	for n := 1; n <= 6; n++ {
		n := n
		points = append(points, Point(fmt.Sprintf("apps=%d", n),
			func(o Options) (AblCapacityRow, error) {
				s, err := Build(ScenarioConfig{Reporters: n, Seed: o.Seed})
				if err != nil {
					return AblCapacityRow{}, err
				}
				s.RunMeasured(o)
				worst := 0.0
				for _, app := range s.Reporters {
					if m := app.Server.Stats().Total.Mean(); m > worst {
						worst = m
					}
				}
				return AblCapacityRow{Apps: n, WorstMean: worst, WithinSLA: worst <= sla}, nil
			}))
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblCapacityResult{SLA: sla, Rows: rows}, nil
}
