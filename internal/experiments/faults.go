package experiments

import (
	"fmt"
	"io"

	"resex/internal/faults"
	"resex/internal/placement"
	"resex/internal/sim"
	"resex/internal/stats"
)

// ---------------------------------------------------------------------------
// abl-faults: fault intensity vs SLA attainment, naive vs degradation-aware.
// ---------------------------------------------------------------------------

// AblFaultsRow is one (intensity, stack) outcome.
type AblFaultsRow struct {
	// StormsPerSec is the injected fault intensity across the fleet.
	StormsPerSec float64
	// Stack is "naive" (unconditional caps, no quarantine) or "aware"
	// (confidence-gated caps, blackout quarantine, migration backoff).
	Stack string
	// SLAPct is the mean per-app *time-weighted* SLA attainment (%): the
	// fraction of the measured window each app spent serving within the SLA.
	// Every completion covers the wall time since the previous one, so a
	// 10 ms request counts as 10 ms of violation rather than one sample
	// among thousands — without this, a throttled-to-the-floor VM barely
	// dents a request-weighted average because it also barely serves
	// (coordinated omission).
	SLAPct float64
	// WorstMean is the worst per-app mean service time (µs).
	WorstMean float64
	// Wrongful counts cap decreases applied while the evidence behind them
	// was stale (blackout or low IBMon confidence) — zero by construction
	// for the aware stack.
	Wrongful int64
	// Held counts cap decreases the aware stack refused on stale evidence.
	Held int64
	// Faults is how many fault events actually fired during the run.
	Faults int
}

// AblFaultsResult sweeps fault intensity over an identical fleet and workload
// mix, once with the naive control stack and once with the degradation-aware
// one. The storms are adversarial for an introspection-driven manager: each
// one stacks a telemetry blackout over a genuine link degradation, so victim
// latency rises exactly while the evidence for *why* goes stale. The naive
// stack keeps attributing the elevation to the biggest sender on stale MTU
// ratios and throttles it into the floor (a wrongful throttle the cap-recovery
// backoff then stretches far past the storm); the aware stack holds last-known
// caps until confidence returns and keeps the fleet inside the SLA.
type AblFaultsResult struct {
	SLA  float64
	Rows []AblFaultsRow
}

// Title implements Result.
func (r *AblFaultsResult) Title() string {
	return "Ablation: fault injection and graceful degradation"
}

// WriteText implements Result.
func (r *AblFaultsResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s (SLA %.0f µs)\n\n%-10s %-7s %8s %11s %9s %6s %7s\n",
		r.Title(), r.SLA, "storms/s", "stack", "SLA(%)", "worst(µs)", "wrongful", "held", "faults")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10.1f %-7s %8.1f %11.1f %9d %6d %7d\n",
			row.StormsPerSec, row.Stack, row.SLAPct, row.WorstMean,
			row.Wrongful, row.Held, row.Faults)
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblFaultsResult) WriteCSV(w io.Writer) error {
	fmt.Fprintln(w, "storms_per_sec,stack,sla_pct,worst_mean_us,wrongful_throttles,held_tightenings,faults_fired")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%g,%s,%g,%g,%d,%d,%d\n",
			row.StormsPerSec, row.Stack, row.SLAPct, row.WorstMean,
			row.Wrongful, row.Held, row.Faults)
	}
	return nil
}

// faultsSLAUs is the attainment bar: generous enough (2.5× the healthy base)
// that the fault physics alone — a serialization slowdown during a 100 ms
// degrade window — keeps requests within it, so the sweep isolates the damage
// the *policy* inflicts when it throttles on stale evidence.
const faultsSLAUs = BaseSLAUs * 2.5

// faultsHosts is the worker-fleet size for the sweep.
const faultsHosts = 4

// faultsBaselineUs is the SLA reference handed to ResEx (the latency the
// policies judge elevation against). It sits above the fleet's measured
// steady-state contention (~290 µs for the fast/slow pair) so healthy
// operation never triggers repricing, and below the storm-window latency so
// fault-driven elevation does — which is the point: every throttle in this
// sweep happens on fault-corrupted evidence.
const faultsBaselineUs = BaseSLAUs * 1.4

// faultsWorkloads builds the per-host pair: one "fast" reporter (window 2,
// the biggest sender on its host — the VM a stale attribution blames) and one
// "slow" reporter (window 1, the victim whose genuine fault-driven elevation
// triggers that attribution). Both are latency-sensitive with the same SLA.
func faultsWorkloads(seed int64) []placement.Workload {
	var ws []placement.Workload
	for i := 0; i < faultsHosts; i++ {
		ws = append(ws, placement.Workload{
			Name: fmt.Sprintf("fast%d", i), BufferSize: BaseBuffer,
			LatencySensitive: true, SLAUs: faultsBaselineUs, Window: 2,
			Seed: seed + int64(i) + 1,
		})
	}
	for i := 0; i < faultsHosts; i++ {
		ws = append(ws, placement.Workload{
			Name: fmt.Sprintf("slow%d", i), BufferSize: BaseBuffer,
			LatencySensitive: true, SLAUs: faultsBaselineUs, Window: 1,
			Seed: seed + 101 + int64(i),
		})
	}
	return ws
}

// runFaultsRow runs one (intensity, stack) cell: a fresh spread-placed fleet,
// the same seeded storm schedule, measured after the arrivals settle.
func runFaultsRow(o Options, stormsPerSec float64, aware bool) (AblFaultsRow, error) {
	row := AblFaultsRow{StormsPerSec: stormsPerSec, Stack: "naive"}
	cfg := placement.Config{
		Hosts:       faultsHosts,
		ClientPCPUs: 2*faultsHosts + 2,
		Strategy:    placement.PipelineStrategy{Label: "spread", P: placement.NewSpreadPipeline()},
		Seed:        o.Seed,
	}
	if aware {
		row.Stack = "aware"
		cfg.ConfidenceGate = 0.7
		cfg.QuarantineBlackouts = true
	}
	f := placement.NewFleet(cfg)
	stopAudit, snapSrc := o.auditFleet(f)
	defer stopAudit()
	ws := faultsWorkloads(o.Seed)

	const arrivalGap = 25 * sim.Millisecond
	var placeErr error
	f.TB.Eng.Go("arrivals", func(p *sim.Proc) {
		for _, w := range ws {
			if _, err := f.Place(w); err != nil {
				placeErr = err
				return
			}
			p.Sleep(arrivalGap)
		}
	})

	// Storms open only after every placement is live and warmed up, and the
	// schedule depends solely on (seed, intensity) — both stacks face the
	// identical fault sequence.
	measureStart := arrivalGap*sim.Time(len(ws)) + o.Warmup
	inj := faults.NewInjector(f.TB.Eng)
	snapSrc.Injector = inj
	f.WireFaults(inj)
	hosts := make([]int, faultsHosts)
	for i := range hosts {
		hosts[i] = i + 1
	}
	inj.Arm(faults.Generate(o.Seed^0x5eed, faults.GenConfig{
		Hosts:        hosts,
		Start:        measureStart,
		Horizon:      measureStart + o.Duration,
		StormsPerSec: stormsPerSec,
	}))

	f.TB.Eng.RunUntil(measureStart + o.Duration)
	if placeErr != nil {
		return row, placeErr
	}

	measureEnd := measureStart + o.Duration
	slaTime := sim.Time(faultsSLAUs) * sim.Microsecond
	var attainSum float64
	var apps int
	for _, pl := range f.Placements() {
		apps++
		var ok, bad sim.Time
		var sum stats.Summary
		prev := measureStart
		for _, rec := range pl.Records() {
			if rec.Reaped < measureStart || rec.Reaped > measureEnd {
				continue
			}
			dt := rec.Reaped - prev
			prev = rec.Reaped
			if rec.Total() <= slaTime {
				ok += dt
			} else {
				bad += dt
			}
			sum.Add(rec.Total().Microseconds())
		}
		// Tail: if nothing completed for longer than the SLA bar, the
		// in-flight request has already blown it.
		if tail := measureEnd - prev; tail > slaTime {
			bad += tail
		} else {
			ok += tail
		}
		attainSum += float64(ok) / float64(ok+bad)
		if sum.Mean() > row.WorstMean {
			row.WorstMean = sum.Mean()
		}
	}
	if apps > 0 {
		row.SLAPct = 100 * attainSum / float64(apps)
	}
	for _, mgr := range f.Mgrs {
		fs := mgr.FaultStats()
		row.Wrongful += fs.WrongfulThrottles
		row.Held += fs.HeldTightenings
	}
	row.Faults = len(inj.Fired())
	f.TB.Eng.Shutdown()
	return row, nil
}

// AblFaults runs the intensity × stack sweep.
func AblFaults(o Options) (*AblFaultsResult, error) {
	o = o.WithDefaults()
	var points []SweepPoint[AblFaultsRow]
	for _, storms := range []float64{0, 4, 12, 24} {
		for _, aware := range []bool{false, true} {
			storms, aware := storms, aware
			stack := "naive"
			if aware {
				stack = "aware"
			}
			points = append(points, Point(fmt.Sprintf("%g/s %s", storms, stack),
				func(o Options) (AblFaultsRow, error) {
					return runFaultsRow(o, storms, aware)
				}))
		}
	}
	rows, err := RunSweep(o, points)
	if err != nil {
		return nil, err
	}
	return &AblFaultsResult{SLA: faultsSLAUs, Rows: rows}, nil
}
