package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"resex/internal/cluster"
	"resex/internal/exchange"
	"resex/internal/faults"
	"resex/internal/hca"
	"resex/internal/ibmon"
	"resex/internal/invariant"
	"resex/internal/placement"
	"resex/internal/resex"
	"resex/internal/schedshard"
	"resex/internal/sim"
	"resex/internal/simpar"
	"resex/internal/workload"
	"resex/internal/xen"
)

// HostState pairs one host's hypervisor and adapter exports.
type HostState struct {
	Xen xen.State `json:"xen"`
	HCA hca.State `json:"hca"`
}

// State is one engine's full deterministic export at the capture point:
// every subsystem's Checkpoint() output, gathered in host order. Two runs of
// the same seeded inputs that agree on this struct (byte-for-byte as
// canonical JSON) have the same queue contents, RNG positions, ledgers, and
// accumulators — which, by determinism, pins all of their remaining output.
type State struct {
	Engine   sim.EngineState         `json:"engine"`
	Hosts    []HostState             `json:"hosts,omitempty"`
	Managers []resex.State           `json:"managers,omitempty"`
	Monitors []ibmon.State           `json:"monitors,omitempty"`
	Faults   *faults.State           `json:"faults,omitempty"`
	Workload *workload.State         `json:"workload,omitempty"`
	Fleet    *placement.State        `json:"fleet,omitempty"`
	Sched    *schedshard.State       `json:"schedshard,omitempty"`
	SimPar   *simpar.HostState       `json:"simpar,omitempty"`
	Auditor  *invariant.AuditorState `json:"auditor,omitempty"`
	Exchange []exchange.State        `json:"exchange,omitempty"`
}

// Source enumerates the live objects a capture exports. All fields are
// optional and filled per rig (testbed runs have hosts and managers, fleet
// runs add monitors and placements, workload runs add tenants, fault runs
// add the injector cursor, audited runs add the auditor); the engine itself
// is supplied at capture time by the armed breakpoint.
type Source struct {
	TB       *cluster.Testbed
	Managers []*resex.Manager
	Monitors []*ibmon.Monitor
	Workload *workload.Engine
	Fleet    *placement.Fleet
	Sched    *schedshard.Scheduler
	Injector *faults.Injector
	Auditor  *invariant.Auditor
	// SimPar is the engine's simpar host in a sharded run. Its exported
	// state is shard-invariant by construction (see simpar.HostState), so
	// bundles stay byte-identical across -simshards values.
	SimPar *simpar.Host
	// Books are the per-host fungible-market trade books (in host order)
	// when the run prices with the exchange; nil entries are skipped.
	Books []*exchange.Book
}

// Capture exports the source's full state under eng. Pure observer: it
// only calls the per-package Checkpoint() observers, so capturing cannot
// perturb the run it captures.
func (s Source) Capture(eng *sim.Engine) State {
	st := State{Engine: eng.Checkpoint()}
	if s.TB != nil {
		for _, h := range s.TB.Hosts {
			st.Hosts = append(st.Hosts, HostState{Xen: h.HV.Checkpoint(), HCA: h.HCA.Checkpoint()})
		}
	}
	for _, m := range s.Managers {
		if m != nil {
			st.Managers = append(st.Managers, m.Checkpoint())
		}
	}
	for _, mon := range s.Monitors {
		if mon != nil {
			st.Monitors = append(st.Monitors, mon.Checkpoint())
		}
	}
	if s.Injector != nil {
		fs := s.Injector.Checkpoint()
		st.Faults = &fs
	}
	if s.Workload != nil {
		ws := s.Workload.Checkpoint()
		st.Workload = &ws
	}
	if s.Fleet != nil {
		ps := s.Fleet.Checkpoint()
		st.Fleet = &ps
	}
	if s.Sched != nil {
		ss := s.Sched.Checkpoint()
		st.Sched = &ss
	}
	if s.SimPar != nil {
		sp := s.SimPar.Checkpoint()
		st.SimPar = &sp
	}
	if s.Auditor != nil {
		as := s.Auditor.Checkpoint()
		st.Auditor = &as
	}
	for _, bk := range s.Books {
		if bk != nil {
			st.Exchange = append(st.Exchange, bk.Checkpoint())
		}
	}
	return st
}

// sections lists the top-level State fields by name, for mismatch
// diagnostics that point at the diverging subsystem instead of dumping two
// multi-kilobyte JSON blobs.
func (st State) sections() []struct {
	name string
	v    any
} {
	return []struct {
		name string
		v    any
	}{
		{"engine", st.Engine},
		{"hosts", st.Hosts},
		{"managers", st.Managers},
		{"monitors", st.Monitors},
		{"faults", st.Faults},
		{"workload", st.Workload},
		{"fleet", st.Fleet},
		{"schedshard", st.Sched},
		{"simpar", st.SimPar},
		{"auditor", st.Auditor},
		{"exchange", st.Exchange},
	}
}

// Diverging compares two state exports section by section and returns the
// names of the diverging sections (nil when byte-identical as canonical
// JSON). The daemon uses it to verify a replayed session against its
// snapshot; the experiment plans use the same comparison internally.
func Diverging(got, want State) []string { return diff(got, want) }

// diff compares two states section by section and returns the names of the
// diverging sections (nil when byte-identical as canonical JSON).
func diff(got, want State) []string {
	g, w := got.sections(), want.sections()
	var bad []string
	for i := range g {
		gj, _ := json.Marshal(g[i].v)
		wj, _ := json.Marshal(w[i].v)
		if string(gj) != string(wj) {
			bad = append(bad, g[i].name)
		}
	}
	return bad
}

// Plan coordinates snapshot capture or verification across every engine a
// run builds. One Plan spans a whole resexsim invocation (all sweep points,
// any -parallel width): engines register via Arm, which assigns each a
// deterministic Key{PointSeed, Ordinal} — the point's derived seed plus a
// per-point build counter — so the capture run and the replaying restore
// run agree on numbering without coordination.
//
// In capture mode the armed breakpoint exports the engine's state at T into
// the plan. In verify mode it exports the same state and compares it
// byte-for-byte (as canonical JSON) against the recorded snapshot for its
// key; any divergence, missing key, or leftover key surfaces through Err.
// Engines whose runs end before T never fire — symmetric in both modes, so
// such engines simply have no snapshot entry.
type Plan struct {
	at     sim.Time
	verify bool

	mu       sync.Mutex
	ordinals map[int64]int
	snaps    []Snapshot
	want     map[Key]*Snapshot
	used     map[Key]bool
	errs     []string
}

// NewCapture returns a plan that captures every armed engine's state at
// virtual time at.
func NewCapture(at sim.Time) *Plan {
	return &Plan{at: at, ordinals: make(map[int64]int)}
}

// NewVerify returns a plan that re-captures at the bundle's recorded T and
// verifies each engine against its stored snapshot.
func NewVerify(b *Bundle) *Plan {
	p := &Plan{
		at:       sim.Time(b.Meta.SnapshotAtNs),
		verify:   true,
		ordinals: make(map[int64]int),
		want:     make(map[Key]*Snapshot, len(b.Snaps)),
		used:     make(map[Key]bool, len(b.Snaps)),
	}
	for i := range b.Snaps {
		s := &b.Snaps[i]
		if _, dup := p.want[s.Key]; dup {
			p.fail(fmt.Sprintf("duplicate snapshot key %+v in bundle", s.Key))
			continue
		}
		p.want[s.Key] = s
	}
	return p
}

// At reports the capture point T.
func (p *Plan) At() sim.Time { return p.at }

// Verifying reports whether the plan checks against a recorded bundle.
func (p *Plan) Verifying() bool { return p.verify }

// Arm registers one engine: a seq-neutral breakpoint at T that captures (or
// verifies) the source's state. Must be called before the engine runs past
// T. The source is read when the breakpoint fires, so callers may keep
// filling fields (e.g. a fault injector built later in setup) after arming.
// Safe for concurrent use across sweep points; within one point, arm
// engines in build order (points build engines sequentially, so this is the
// natural order).
func (p *Plan) Arm(eng *sim.Engine, pointSeed int64, src *Source) {
	p.mu.Lock()
	ord := p.ordinals[pointSeed]
	p.ordinals[pointSeed] = ord + 1
	p.mu.Unlock()
	key := Key{PointSeed: pointSeed, Ordinal: ord}
	eng.Breakpoint(p.at, func() {
		var st State
		if src != nil {
			st = src.Capture(eng)
		} else {
			st = Source{}.Capture(eng)
		}
		p.record(key, int64(eng.Now()), st)
	})
}

func (p *Plan) record(key Key, atNs int64, st State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.verify {
		p.snaps = append(p.snaps, Snapshot{Key: key, AtNs: atNs, State: st})
		return
	}
	want, ok := p.want[key]
	if !ok {
		p.errs = append(p.errs, fmt.Sprintf("engine %+v reached T on replay but has no recorded snapshot", key))
		return
	}
	if p.used[key] {
		p.errs = append(p.errs, fmt.Sprintf("engine %+v captured twice on replay", key))
		return
	}
	p.used[key] = true
	if atNs != want.AtNs {
		p.errs = append(p.errs, fmt.Sprintf("engine %+v fired at %dns, recorded %dns", key, atNs, want.AtNs))
	}
	if bad := diff(st, want.State); len(bad) > 0 {
		p.errs = append(p.errs, fmt.Sprintf("engine %+v diverged from recorded snapshot in: %s", key, strings.Join(bad, ", ")))
	}
}

func (p *Plan) fail(msg string) {
	p.mu.Lock()
	p.errs = append(p.errs, msg)
	p.mu.Unlock()
}

// Bundle assembles the captured snapshots (sorted by key) under the given
// meta. Capture mode only.
func (p *Plan) Bundle(meta Meta) (*Bundle, error) {
	if p.verify {
		return nil, errors.New("snapshot: Bundle called on a verify plan")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.snaps) == 0 {
		return nil, fmt.Errorf("snapshot: no engine reached T=%dns (run too short?)", int64(p.at))
	}
	snaps := make([]Snapshot, len(p.snaps))
	copy(snaps, p.snaps)
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].Key.PointSeed != snaps[j].Key.PointSeed {
			return snaps[i].Key.PointSeed < snaps[j].Key.PointSeed
		}
		return snaps[i].Key.Ordinal < snaps[j].Key.Ordinal
	})
	meta.SnapshotAtNs = int64(p.at)
	return &Bundle{Meta: meta, Snaps: snaps}, nil
}

// Err reports the verification outcome: nil when every recorded snapshot
// was re-captured and matched byte-for-byte. Call after the run completes.
func (p *Plan) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	errs := append([]string(nil), p.errs...)
	if p.verify {
		var missing []Key
		for k := range p.want {
			if !p.used[k] {
				missing = append(missing, k)
			}
		}
		sort.Slice(missing, func(i, j int) bool {
			if missing[i].PointSeed != missing[j].PointSeed {
				return missing[i].PointSeed < missing[j].PointSeed
			}
			return missing[i].Ordinal < missing[j].Ordinal
		})
		for _, k := range missing {
			errs = append(errs, fmt.Sprintf("recorded snapshot %+v was never re-captured on replay", k))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("snapshot: verification failed:\n  %s", strings.Join(errs, "\n  "))
}
