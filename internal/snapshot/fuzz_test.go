package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"resex/internal/sim"
)

// FuzzSnapshotDecode holds Decode to its contract: arbitrary bytes —
// truncations, bit flips, version skews, hostile length fields — produce an
// error or a valid bundle, never a panic, and anything Decode accepts must
// re-encode and decode to the same payload.
func FuzzSnapshotDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Bundle{
		Meta: Meta{Kind: "experiment", Experiment: "fig1", Seed: 42, SnapshotAtNs: 1e9},
		Snaps: []Snapshot{{
			Key:   Key{PointSeed: 7, Ordinal: 0},
			AtNs:  1e9,
			State: State{Engine: sim.EngineState{Now: sim.Second, Steps: 3, Seq: 5}},
		}},
	}); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()

	f.Add(good)                  // valid bundle
	f.Add([]byte{})              // empty
	f.Add(good[:5])              // truncated magic
	f.Add(good[:14])             // header only
	f.Add(good[:20])             // truncated length
	f.Add(good[:len(good)-8])    // missing checksum
	f.Add(good[:len(good)-1])    // short checksum
	f.Add([]byte("RESEXSNAP\n")) // bare magic

	skew := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(skew[10:14], Version+9)
	f.Add(skew) // version skew

	huge := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(huge[14:22], 1<<62)
	f.Add(huge) // hostile length field

	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip) // payload corruption

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must survive a re-encode/decode round trip.
		var out bytes.Buffer
		if err := Encode(&out, b); err != nil {
			t.Fatalf("re-encode of accepted bundle failed: %v", err)
		}
		b2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted bundle failed: %v", err)
		}
		j1, _ := json.Marshal(b)
		j2, _ := json.Marshal(b2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip changed bundle:\n%s\n%s", j1, j2)
		}
	})
}
