// Package snapshot implements deterministic, versioned checkpoint/restore
// for the simulation.
//
// Restore is replay-based. The engine's pending events are Go closures —
// they cannot be serialized, and no structural resurrection of a closure
// graph is possible in Go — but every run in this codebase is a pure
// function of its seeded inputs (and, for a daemon session, of its command
// log). A snapshot therefore records three things:
//
//  1. the generative inputs (experiment id or daemon scenario config, seed,
//     durations, the command log),
//  2. the capture point T (virtual time), and
//  3. a full per-subsystem state export at T: engine queue/wheel keys and
//     counters, RNG stream positions, Xen/HCA/ResEx ledgers, IBMon
//     confidence state, fault-plan cursors, workload arrival and SLO-window
//     state, invariant-auditor accumulators.
//
// Restore rebuilds from the inputs, replays deterministically to T, and
// then *verifies* the replayed state against export (3) byte-for-byte —
// divergence is an error, never a silent drift. Because replay is
// deterministic, a restored run's remaining output is byte-identical to the
// uninterrupted run's; the export is what turns that from an assumption
// into a checked property. The same structure makes the snapshot file a
// time-travel fixture: it pins both how to get to T and what T must look
// like.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// Version is the current snapshot format version. Decode rejects any other
// version: the format carries full state exports whose field sets change
// with the subsystems, so cross-version restores would verify garbage.
// Version 2: placement.State gained the cluster-state store counters and
// State gained the schedshard section.
// Version 3: State gained the simpar section (sharded-run coordinator
// state: per-host send counters and in-flight message keys).
// Version 4: State gained the exchange section (per-host fungible-market
// trade books: board utilization EWMAs, ledger totals, holder positions).
// Version 5: exchange vectors widened by the memory-bandwidth dimension
// (DimMemBW) and schedshard pending/bound entries carry gang fields.
const Version = 5

// magic opens every snapshot file.
var magic = []byte("RESEXSNAP\n")

// maxPayload bounds the decoded payload (64 MiB) so a corrupted length
// field cannot make Decode attempt an absurd allocation.
const maxPayload = 64 << 20

// Meta records the generative inputs of the run a snapshot belongs to —
// everything needed to rebuild and replay it from virtual time zero.
type Meta struct {
	// Kind is "experiment" (resexsim driver) or "daemon" (resexd session).
	Kind string `json:"kind"`
	// Experiment is the registered driver id (kind "experiment").
	Experiment string `json:"experiment,omitempty"`
	// Seed, DurationNs, WarmupNs mirror the driver options.
	Seed       int64 `json:"seed"`
	DurationNs int64 `json:"duration_ns,omitempty"`
	WarmupNs   int64 `json:"warmup_ns,omitempty"`
	// Audit records whether the invariant auditor ran (it must match on
	// replay: auditing attaches a step hook and dom0 sampling state).
	Audit bool `json:"audit,omitempty"`
	// SnapshotAtNs is the capture point T in virtual nanoseconds.
	SnapshotAtNs int64 `json:"snapshot_at_ns"`
	// Config carries the daemon's scenario configuration (kind "daemon").
	Config json.RawMessage `json:"config,omitempty"`
}

// LogEntry is one replayable control command of a daemon session, stamped
// with the quantum boundary it was applied at.
type LogEntry struct {
	// Idx is the quantum-boundary index the command executed at.
	Idx int64 `json:"idx"`
	// AtNs is the virtual time of that boundary.
	AtNs int64 `json:"at_ns"`
	// Cmd is the command's wire form, replayed verbatim.
	Cmd json.RawMessage `json:"cmd"`
}

// Key identifies one captured engine within a run: the sweep point's
// derived seed and the engine's build ordinal within that point. Both are
// deterministic at any -parallel width, which is what lets capture and
// verify runs agree on numbering without coordination.
type Key struct {
	PointSeed int64 `json:"point_seed"`
	Ordinal   int   `json:"ordinal"`
}

// Snapshot is one engine's captured state at the capture point.
type Snapshot struct {
	Key   Key   `json:"key"`
	AtNs  int64 `json:"at_ns"`
	State State `json:"state"`
}

// Bundle is a snapshot file: inputs, command log, and every engine capture.
type Bundle struct {
	Meta  Meta       `json:"meta"`
	Log   []LogEntry `json:"log,omitempty"`
	Snaps []Snapshot `json:"snaps"`
}

// Encode writes the bundle: magic, version, payload length, JSON payload,
// FNV-64a checksum of the payload. The JSON layer keeps the format
// diffable and versionable; the frame makes truncation and corruption
// loud.
func Encode(w io.Writer, b *Bundle) error {
	payload, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	var hdr [14]byte
	copy(hdr[:10], magic)
	binary.BigEndian.PutUint32(hdr[10:14], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var ln [8]byte
	binary.BigEndian.PutUint64(ln[:], uint64(len(payload)))
	if _, err := w.Write(ln[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(payload)
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	_, err = w.Write(sum[:])
	return err
}

// Decode reads a bundle, rejecting truncated, corrupted, or version-skewed
// input with an error (never a panic — FuzzSnapshotDecode holds it to
// that).
func Decode(r io.Reader) (*Bundle, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: short header: %w", err)
	}
	if !bytes.Equal(hdr[:10], magic) {
		return nil, fmt.Errorf("snapshot: bad magic %q", hdr[:10])
	}
	if v := binary.BigEndian.Uint32(hdr[10:14]); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d (this build reads %d)", v, Version)
	}
	var ln [8]byte
	if _, err := io.ReadFull(r, ln[:]); err != nil {
		return nil, fmt.Errorf("snapshot: short length: %w", err)
	}
	n := binary.BigEndian.Uint64(ln[:])
	if n > maxPayload {
		return nil, fmt.Errorf("snapshot: payload length %d exceeds limit %d", n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("snapshot: short payload: %w", err)
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("snapshot: short checksum: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	if got, want := h.Sum64(), binary.BigEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch: %016x != %016x", got, want)
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	b := new(Bundle)
	if err := dec.Decode(b); err != nil {
		return nil, fmt.Errorf("snapshot: payload: %w", err)
	}
	return b, nil
}

// WriteFile encodes the bundle to path (0644).
func WriteFile(path string, b *Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes the bundle at path.
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
