package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"resex/internal/exchange"
	"resex/internal/sim"
)

func sampleBundle() *Bundle {
	return &Bundle{
		Meta: Meta{
			Kind:         "experiment",
			Experiment:   "fig1",
			Seed:         42,
			DurationNs:   int64(2 * sim.Second),
			WarmupNs:     int64(100 * sim.Millisecond),
			Audit:        true,
			SnapshotAtNs: int64(sim.Second),
		},
		Log: []LogEntry{
			{Idx: 0, AtNs: 0, Cmd: json.RawMessage(`{"cmd":"run-until","t":"1s"}`)},
		},
		Snaps: []Snapshot{
			{
				Key:  Key{PointSeed: 7, Ordinal: 0},
				AtNs: int64(sim.Second),
				State: State{
					Engine: sim.EngineState{Now: sim.Second, Steps: 123, Seq: 456},
				},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := sampleBundle()
	var buf bytes.Buffer
	if err := Encode(&buf, b); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want, _ := json.Marshal(b)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Fatalf("round trip mismatch:\nwant %s\ngot  %s", want, have)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.snap")
	if err := WriteFile(path, sampleBundle()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Meta.Experiment != "fig1" || len(got.Snaps) != 1 {
		t.Fatalf("unexpected bundle: %+v", got.Meta)
	}
}

func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, sampleBundle()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeRejectsDamage(t *testing.T) {
	good := encodeSample(t)
	cases := map[string]func() []byte{
		"empty":       func() []byte { return nil },
		"short magic": func() []byte { return good[:4] },
		"bad magic": func() []byte {
			b := append([]byte(nil), good...)
			b[0] ^= 0xff
			return b
		},
		"version skew": func() []byte {
			b := append([]byte(nil), good...)
			binary.BigEndian.PutUint32(b[10:14], Version+1)
			return b
		},
		"truncated length": func() []byte { return good[:16] },
		"absurd length": func() []byte {
			b := append([]byte(nil), good...)
			binary.BigEndian.PutUint64(b[14:22], maxPayload+1)
			return b
		},
		"truncated payload": func() []byte { return good[:len(good)-12] },
		"missing checksum":  func() []byte { return good[:len(good)-8] },
		"flipped payload byte": func() []byte {
			b := append([]byte(nil), good...)
			b[30] ^= 0x01
			return b
		},
		"flipped checksum byte": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0x01
			return b
		},
		"unknown json field": func() []byte {
			payload := []byte(`{"meta":{"kind":"experiment","seed":0,"snapshot_at_ns":0,"bogus":1},"snaps":[]}`)
			return frame(payload)
		},
	}
	for name, mk := range cases {
		if _, err := Decode(bytes.NewReader(mk())); err == nil {
			t.Errorf("%s: Decode accepted damaged input", name)
		}
	}
}

// frame wraps raw payload bytes in a valid header+checksum, for tests that
// need to damage the JSON layer specifically.
func frame(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(magic)
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], Version)
	buf.Write(v[:])
	var ln [8]byte
	binary.BigEndian.PutUint64(ln[:], uint64(len(payload)))
	buf.Write(ln[:])
	buf.Write(payload)
	h := fnvSum(payload)
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h)
	buf.Write(sum[:])
	return buf.Bytes()
}

func fnvSum(p []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

func TestPlanCaptureAssignsDeterministicKeys(t *testing.T) {
	// Two points, two engines each, armed in interleaved order as a
	// parallel sweep might: ordinals must still be per-point build order.
	p := NewCapture(sim.Millisecond)
	engines := make([]*sim.Engine, 4)
	seeds := []int64{101, 202, 101, 202}
	for i := range engines {
		eng := sim.New()
		// A periodic keeps each engine alive past T.
		eng.Every(100*sim.Microsecond, func() {})
		p.Arm(eng, seeds[i], &Source{})
		engines[i] = eng
	}
	for _, eng := range engines {
		eng.RunUntil(2 * sim.Millisecond)
	}
	b, err := p.Bundle(Meta{Kind: "experiment", Experiment: "x", Seed: 1})
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	wantKeys := []Key{{101, 0}, {101, 1}, {202, 0}, {202, 1}}
	if len(b.Snaps) != len(wantKeys) {
		t.Fatalf("got %d snaps, want %d", len(b.Snaps), len(wantKeys))
	}
	for i, s := range b.Snaps {
		if s.Key != wantKeys[i] {
			t.Errorf("snap %d key = %+v, want %+v", i, s.Key, wantKeys[i])
		}
		if s.AtNs != int64(sim.Millisecond) {
			t.Errorf("snap %d at = %d, want %d", i, s.AtNs, int64(sim.Millisecond))
		}
	}
}

func TestPlanVerifyMatchesAndCatchesDivergence(t *testing.T) {
	run := func(plan *Plan, extraEvent bool) {
		eng := sim.New()
		eng.Every(100*sim.Microsecond, func() {})
		if extraEvent {
			eng.After(500*sim.Microsecond, func() {})
		}
		plan.Arm(eng, 55, &Source{})
		eng.RunUntil(2 * sim.Millisecond)
	}

	c := NewCapture(sim.Millisecond)
	run(c, false)
	b, err := c.Bundle(Meta{Kind: "experiment", Experiment: "x"})
	if err != nil {
		t.Fatal(err)
	}

	ok := NewVerify(b)
	run(ok, false)
	if err := ok.Err(); err != nil {
		t.Fatalf("identical replay failed verification: %v", err)
	}

	bad := NewVerify(b)
	run(bad, true)
	err = bad.Err()
	if err == nil {
		t.Fatal("diverged replay passed verification")
	}
	if !strings.Contains(err.Error(), "engine") {
		t.Fatalf("divergence error does not name the engine section: %v", err)
	}
}

func TestPlanVerifyReportsMissingEngines(t *testing.T) {
	c := NewCapture(sim.Millisecond)
	eng := sim.New()
	eng.Every(100*sim.Microsecond, func() {})
	c.Arm(eng, 9, &Source{})
	eng.RunUntil(2 * sim.Millisecond)
	b, err := c.Bundle(Meta{Kind: "experiment"})
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerify(b) // never arm anything
	if err := v.Err(); err == nil || !strings.Contains(err.Error(), "never re-captured") {
		t.Fatalf("missing engine not reported: %v", err)
	}
}

func TestBundleOnVerifyPlanErrors(t *testing.T) {
	v := NewVerify(&Bundle{})
	if _, err := v.Bundle(Meta{}); err == nil {
		t.Fatal("Bundle on a verify plan should error")
	}
}

func TestBundleWithNoSnapsErrors(t *testing.T) {
	p := NewCapture(sim.Second)
	if _, err := p.Bundle(Meta{}); err == nil {
		t.Fatal("Bundle with zero captures should error")
	}
}

func TestDecodeRejectsPriorVersion(t *testing.T) {
	// A Version-3 frame (the last format before the exchange section) must
	// be rejected with an error naming both versions, not mis-parsed.
	b := encodeSample(t)
	binary.BigEndian.PutUint32(b[10:14], 3)
	_, err := Decode(bytes.NewReader(b))
	if err == nil {
		t.Fatal("Decode accepted a version-3 snapshot")
	}
	if !strings.Contains(err.Error(), "format version 3") ||
		!strings.Contains(err.Error(), fmt.Sprint(Version)) {
		t.Fatalf("version error does not name both versions: %v", err)
	}
}

func TestExchangeSectionRoundTrips(t *testing.T) {
	// A bundle carrying per-host trade books must survive Encode/Decode
	// byte-identically and diff as the "exchange" section when tampered.
	bk := exchange.NewBook(exchange.BookConfig{})
	a := bk.Join("vm-a", exchange.Vec{100_000, 1 << 19})
	b := bk.Join("vm-b", exchange.Vec{100_000, 1 << 19})
	bk.Spend(a, exchange.DimFabric, 900_000)
	bk.Spend(b, exchange.DimCPU, 50_000)
	bk.CloseEpoch()
	bk.Spend(a, exchange.DimFabric, 900_000)
	bk.CloseEpoch()

	bun := sampleBundle()
	bun.Snaps[0].State.Exchange = []exchange.State{bk.Checkpoint()}
	var buf bytes.Buffer
	if err := Encode(&buf, bun); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want, _ := json.Marshal(bun)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Fatalf("exchange round trip mismatch:\nwant %s\ngot  %s", want, have)
	}

	tampered := got.Snaps[0].State
	tampered.Exchange[0].Trades++
	if bad := Diverging(tampered, bun.Snaps[0].State); len(bad) != 1 || bad[0] != "exchange" {
		t.Fatalf("tampered book diffs as %v, want [exchange]", bad)
	}
}

func TestCaptureSkipsNilBooks(t *testing.T) {
	bk := exchange.NewBook(exchange.BookConfig{})
	src := Source{Books: []*exchange.Book{nil, bk, nil}}
	st := src.Capture(sim.New())
	if len(st.Exchange) != 1 {
		t.Fatalf("captured %d books, want 1", len(st.Exchange))
	}
}
