package xen

import (
	"fmt"

	"resex/internal/sim"
)

// PCPU is one physical CPU with its pinned VCPUs and the per-CPU scheduler
// state.
type PCPU struct {
	hv         *Hypervisor
	id         int
	vcpus      []*VCPU
	current    *VCPU
	grantEnd   sim.Time
	grantTimer sim.Timer
	retryTimer sim.Timer
	endGrantFn func()   // bound endGrant, allocated once (grants are per-tick hot)
	busy       sim.Time // cumulative granted-and-used time
}

// ID returns the PCPU index.
func (c *PCPU) ID() int { return c.id }

// Current returns the VCPU holding the active grant, or nil when idle.
func (c *PCPU) Current() *VCPU { return c.current }

// BusyTime returns the cumulative time VCPUs actually consumed on this CPU.
func (c *PCPU) BusyTime() sim.Time { return c.busy }

// maybeReschedule triggers a scheduling decision if the CPU is idle; if a
// grant is active the decision waits for the grant to expire (tick-based
// preemption).
func (c *PCPU) maybeReschedule() {
	if c.current == nil {
		c.reschedule()
	}
}

// pick selects the runnable VCPU with budget remaining that has the
// smallest weight-normalized window consumption (stride-style proportional
// share). Ties break by pin order for determinism.
func (c *PCPU) pick() *VCPU {
	var best *VCPU
	var bestKey float64
	for _, v := range c.vcpus {
		if !v.demand() || v.budget <= 0 {
			continue
		}
		key := float64(v.windowUsed) / float64(v.dom.weight)
		if best == nil || key < bestKey {
			best, bestKey = v, key
		}
	}
	return best
}

// reschedule issues a new grant. Must only run when no grant is active.
// Window budgets are refreshed lazily here rather than by a global periodic
// tick, so an idle simulation generates no events.
func (c *PCPU) reschedule() {
	if c.current != nil {
		return
	}
	now := c.hv.eng.Now()
	window := now / c.hv.cfg.CapPeriod
	for _, v := range c.vcpus {
		v.refresh(window)
	}
	v := c.pick()
	windowEnd := (window + 1) * c.hv.cfg.CapPeriod
	if v == nil {
		// Idle. If a capped-out VCPU still has demand, retry at the next
		// window boundary, when its budget refills.
		for _, w := range c.vcpus {
			if w.demand() {
				c.scheduleRetry(windowEnd)
				break
			}
		}
		return
	}
	g := c.hv.cfg.Tick
	if v.budget < g {
		g = v.budget
	}
	if rem := windowEnd - now; rem < g {
		g = rem
	}
	// Pre-charge the grant against the window budget at issuance. This is
	// what makes caps exact: a grant is only ever issued out of remaining
	// budget, so a capped VCPU can never run past its share no matter how
	// scheduler and guest events interleave. Unused grant time is refunded
	// by yieldGrant.
	v.budget -= g
	v.windowUsed += g
	c.current = v
	c.grantEnd = now + g
	v.running = true
	if c.endGrantFn == nil {
		c.endGrantFn = c.endGrant
	}
	c.grantTimer = c.hv.eng.After(g, c.endGrantFn)
	v.grantSig.Broadcast()
}

// scheduleRetry arms (at most one) wake-up for an idle CPU whose remaining
// demand is capped out until the given window boundary. A fired retry timer
// reports inactive on its own, so no reset bookkeeping is needed.
func (c *PCPU) scheduleRetry(at sim.Time) {
	if c.retryTimer.Active() {
		return
	}
	c.retryTimer = c.hv.eng.Schedule(at, c.maybeReschedule)
}

// endGrant expires the active grant and makes the next decision.
func (c *PCPU) endGrant() {
	v := c.current
	if v == nil {
		return
	}
	v.running = false
	c.current = nil
	c.reschedule()
}

// yieldGrant is called by a VCPU that stopped having demand mid-grant: the
// unused remainder is refunded to its budget and the CPU rescheduled.
func (c *PCPU) yieldGrant(v *VCPU) {
	if c.current != v {
		return
	}
	if rem := c.grantEnd - c.hv.eng.Now(); rem > 0 {
		v.budget += rem
		v.windowUsed -= rem
	}
	c.grantTimer.Stop()
	v.running = false
	c.current = nil
	c.reschedule()
}

// VCPU is a virtual CPU pinned to one PCPU. Guest code runs on it through
// Use (consume CPU time) and SpinWait (poll while consuming CPU); both make
// progress only while the scheduler has granted the VCPU its PCPU, so a
// capped domain's compute — and therefore its ability to issue I/O — is
// throttled exactly as in Xen.
type VCPU struct {
	dom        *Domain
	pcpu       *PCPU
	id         int
	window     sim.Time // cap-window index the budget belongs to
	budget     sim.Time // remaining runnable time this window
	windowUsed sim.Time
	consumed   sim.Time
	running    bool
	grantSig   *sim.Signal
	owner      *sim.Proc
	queue      []*sim.Proc // FIFO of guest threads waiting for the VCPU
	mutexSig   *sim.Signal
}

// Domain returns the owning domain.
func (v *VCPU) Domain() *Domain { return v.dom }

// PCPU returns the physical CPU the VCPU is pinned to.
func (v *VCPU) PCPU() *PCPU { return v.pcpu }

// ID returns the VCPU index within its domain.
func (v *VCPU) ID() int { return v.id }

// ConsumedTime returns cumulative CPU time consumed by this VCPU.
func (v *VCPU) ConsumedTime() sim.Time { return v.consumed }

// String identifies the VCPU in diagnostics.
func (v *VCPU) String() string { return fmt.Sprintf("%s/v%d", v.dom.name, v.id) }

// WindowBudget returns the VCPU's remaining runnable time in the current cap
// window. Grants are pre-charged at issuance, so this is never negative —
// that zero bound is the "documented bound" the invariant auditor checks.
func (v *VCPU) WindowBudget() sim.Time { return v.budget }

// WindowUsed returns the time already debited against the current cap
// window (issued grants, minus yield refunds).
func (v *VCPU) WindowUsed() sim.Time { return v.windowUsed }

// WindowQuota returns the per-window budget the current domain cap implies
// (the full CapPeriod when uncapped).
func (v *VCPU) WindowQuota() sim.Time { return v.capShare() }

// refresh rolls the VCPU's budget forward if a new cap window has begun.
func (v *VCPU) refresh(window sim.Time) {
	if window != v.window {
		v.window = window
		v.budget = v.capShare()
		v.windowUsed = 0
	}
}

// capShare returns the per-window budget implied by the domain cap.
func (v *VCPU) capShare() sim.Time {
	if v.dom.cap <= 0 {
		return v.pcpu.hv.cfg.CapPeriod
	}
	return v.pcpu.hv.cfg.CapPeriod * sim.Time(v.dom.cap) / 100
}

// demand reports whether any guest thread currently wants the VCPU.
func (v *VCPU) demand() bool { return v.owner != nil || len(v.queue) > 0 }

// acquire serializes guest threads (procs) onto the VCPU with strict FIFO
// handoff: release assigns ownership to the head of the queue directly, so
// a thread that releases and immediately re-acquires (the per-request serve
// loop) cannot starve a waiting thread (e.g. the monitoring agent).
func (v *VCPU) acquire(p *sim.Proc) {
	if v.owner == nil && len(v.queue) == 0 {
		v.owner = p
		v.pcpu.maybeReschedule()
		return
	}
	v.queue = append(v.queue, p)
	defer func() {
		// Kill-unwind: drop out of the queue, or give back ownership that
		// was assigned while this thread was dying.
		if r := recover(); r != nil {
			if v.owner == p {
				v.release()
			} else {
				v.dropQueued(p)
			}
			panic(r)
		}
	}()
	for v.owner != p {
		v.mutexSig.Wait(p)
	}
	v.pcpu.maybeReschedule()
}

// dropQueued removes p from the wait queue.
func (v *VCPU) dropQueued(p *sim.Proc) {
	for i, q := range v.queue {
		if q == p {
			v.queue = append(v.queue[:i], v.queue[i+1:]...)
			return
		}
	}
}

// release hands the VCPU to the next queued guest thread, if any.
//
// When no thread is waiting the grant is NOT surrendered immediately: a
// guest thread that finishes one Use and immediately starts the next (the
// per-request loop of every real application) never blocked from the
// guest's point of view, so the VCPU must stay scheduled. The yield check
// runs after all same-instant events settle; only a VCPU that is then still
// idle gives its grant (and the unused budget) back. Without this grace, a
// scheduler decision would fire between every pair of back-to-back Use
// calls and proportional weights would degenerate to strict alternation.
func (v *VCPU) release() {
	if len(v.queue) > 0 {
		v.owner = v.queue[0]
		v.queue = v.queue[1:]
		v.mutexSig.Broadcast() // queued threads re-check ownership
		return
	}
	v.owner = nil
	if v.pcpu.current == v {
		v.pcpu.hv.eng.After(0, func() {
			if !v.demand() {
				v.pcpu.yieldGrant(v)
			}
		})
	}
}

// waitGrant parks p until the VCPU holds an active grant, returning the
// remaining grant time (> 0).
func (v *VCPU) waitGrant(p *sim.Proc) sim.Time {
	eng := v.pcpu.hv.eng
	for {
		if v.running && v.pcpu.current == v {
			if rem := v.pcpu.grantEnd - eng.Now(); rem > 0 {
				return rem
			}
		}
		v.grantSig.Wait(p)
	}
}

// charge accounts d of actual execution for XenStat-style counters. The
// window budget was already debited when the grant was issued.
func (v *VCPU) charge(d sim.Time) {
	if d <= 0 {
		return
	}
	v.consumed += d
	v.dom.consumed += d
	v.pcpu.busy += d
}

// Use consumes d of CPU time on behalf of p: the call returns after the
// scheduler has granted the VCPU a total of d of execution, however long
// that takes in virtual time (a domain capped at C% advances CPU work at
// C% of real rate).
func (v *VCPU) Use(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	v.acquire(p)
	defer v.release()
	v.useLocked(p, d)
}

// useLocked is Use without the acquire/release, for callers composing
// several CPU operations under one acquisition.
func (v *VCPU) useLocked(p *sim.Proc, d sim.Time) {
	for d > 0 {
		g := v.waitGrant(p)
		run := d
		if g < run {
			run = g
		}
		p.Sleep(run)
		v.charge(run)
		d -= run
	}
}

// SpinWait polls cond, consuming CPU while scheduled, until cond reports
// true; sig must be broadcast whenever cond may have changed (a CQ's
// completion signal). It returns (busy, elapsed): CPU actually burned
// polling and wall virtual time from call to return. This models a guest
// busy-polling its completion queue: descheduled time (cap windows closed)
// elapses without consuming budget, which is why polling latency rises when
// a VM is capped.
func (v *VCPU) SpinWait(p *sim.Proc, sig *sim.Signal, cond func() bool) (busy, elapsed sim.Time) {
	eng := v.pcpu.hv.eng
	start := eng.Now()
	v.acquire(p)
	defer v.release()
	for {
		if cond() {
			return busy, eng.Now() - start
		}
		g := v.waitGrant(p)
		if cond() {
			return busy, eng.Now() - start
		}
		t0 := eng.Now()
		p.WaitAny(sig, g)
		dt := eng.Now() - t0
		v.charge(dt)
		busy += dt
	}
}
