package xen

import "resex/internal/sim"

// VCPUState is one VCPU's scheduler ledger export.
type VCPUState struct {
	ID         int      `json:"id"`
	PCPU       int      `json:"pcpu"`
	Consumed   sim.Time `json:"consumed"`
	Budget     sim.Time `json:"budget"`
	WindowUsed sim.Time `json:"window_used"`
	Window     sim.Time `json:"window"`
	Running    bool     `json:"running"`
	Queued     int      `json:"queued"`
}

// DomainState is one domain's export: identity, cap, CPU ledger, VCPUs.
type DomainState struct {
	ID       DomID       `json:"id"`
	Name     string      `json:"name"`
	Weight   int         `json:"weight"`
	Cap      int         `json:"cap"`
	Consumed sim.Time    `json:"consumed"`
	VCPUs    []VCPUState `json:"vcpus"`
}

// State is the hypervisor's deterministic state export: every domain's cap
// and CPU-time ledger plus each VCPU's window accounting — the quantities
// the credit scheduler's decisions flow from. Like every Checkpoint in this
// codebase it is a pure observer used to verify that a deterministic replay
// reconverged on the same state.
type State struct {
	NextID  DomID         `json:"next_id"`
	Domains []DomainState `json:"domains"`
}

// Checkpoint exports the hypervisor's current scheduling state.
func (hv *Hypervisor) Checkpoint() State {
	st := State{NextID: hv.nextID}
	for _, d := range hv.domains {
		ds := DomainState{
			ID:       d.id,
			Name:     d.name,
			Weight:   d.weight,
			Cap:      d.cap,
			Consumed: d.consumed,
		}
		for _, v := range d.vcpus {
			ds.VCPUs = append(ds.VCPUs, VCPUState{
				ID:         v.id,
				PCPU:       v.pcpu.id,
				Consumed:   v.consumed,
				Budget:     v.budget,
				WindowUsed: v.windowUsed,
				Window:     v.window,
				Running:    v.running,
				Queued:     len(v.queue),
			})
		}
		st.Domains = append(st.Domains, ds)
	}
	return st
}
