package xen

import (
	"reflect"
	"testing"

	"resex/internal/sim"
)

// runSchedLoad drives two capped guests through a deterministic CPU pattern
// and returns the hypervisor export at 50ms. midCheckpoint additionally
// exports mid-run, to prove Checkpoint is a pure observer.
func runSchedLoad(t *testing.T, midCheckpoint bool) State {
	t.Helper()
	eng, hv := newTestHV(t)
	d1 := hv.CreateDomain("g1", 16<<20, 0)
	d2 := hv.CreateDomain("g2", 16<<20, 0)
	v1 := d1.AddVCPU(hv.PCPU(1))
	v2 := d2.AddVCPU(hv.PCPU(1)) // same PCPU: contention
	d2.SetCap(40)
	eng.Go("app1", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			v1.Use(p, 2*sim.Millisecond)
			p.Sleep(sim.Millisecond)
		}
	})
	eng.Go("app2", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			v2.Use(p, 3*sim.Millisecond)
		}
	})
	if midCheckpoint {
		eng.Breakpoint(17*sim.Millisecond, func() { _ = hv.Checkpoint() })
	}
	eng.RunUntil(50 * sim.Millisecond)
	return hv.Checkpoint()
}

// TestCheckpointEquality: identical runs export identical scheduler state,
// and exporting mid-run does not perturb the run.
func TestCheckpointEquality(t *testing.T) {
	a := runSchedLoad(t, false)
	b := runSchedLoad(t, false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-run exports differ:\n%+v\n%+v", a, b)
	}
	c := runSchedLoad(t, true)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("mid-run Checkpoint perturbed the schedule:\n%+v\n%+v", a, c)
	}
	if len(a.Domains) != 3 { // dom0 + two guests
		t.Fatalf("export holds %d domains, want 3", len(a.Domains))
	}
	var consumed sim.Time
	for _, d := range a.Domains {
		consumed += d.Consumed
	}
	if consumed == 0 {
		t.Fatal("export shows no CPU consumed; load did not run")
	}
}
