package xen

import (
	"testing"

	"resex/internal/sim"
)

// newTestHV returns an engine and a hypervisor with default config.
func newTestHV(t *testing.T) (*sim.Engine, *Hypervisor) {
	t.Helper()
	eng := sim.New()
	return eng, New(eng, Config{})
}

func TestDefaults(t *testing.T) {
	eng, hv := newTestHV(t)
	if hv.NumPCPUs() != 4 {
		t.Errorf("NumPCPUs = %d", hv.NumPCPUs())
	}
	if hv.Config().CapPeriod != 10*sim.Millisecond || hv.Config().Tick != sim.Millisecond {
		t.Errorf("config = %+v", hv.Config())
	}
	if hv.Dom0() == nil || hv.Dom0().ID() != 0 || hv.Dom0().Name() != "Domain-0" {
		t.Error("dom0 not booted")
	}
	if hv.Engine() != eng {
		t.Error("engine mismatch")
	}
}

func TestCreateDomain(t *testing.T) {
	_, hv := newTestHV(t)
	d := hv.CreateDomain("guest1", 64<<20, 0)
	if d.ID() != 1 {
		t.Errorf("first guest id = %d", d.ID())
	}
	if d.Weight() != 256 {
		t.Errorf("default weight = %d", d.Weight())
	}
	if d.Memory().Size() != 64<<20 {
		t.Errorf("memory size = %d", d.Memory().Size())
	}
	if hv.Domain(1) != d || hv.Domain(99) != nil {
		t.Error("Domain lookup broken")
	}
	if len(hv.Domains()) != 2 {
		t.Errorf("Domains len = %d", len(hv.Domains()))
	}
	if d.Hypervisor() != hv {
		t.Error("Hypervisor backref")
	}
}

func TestUseUncappedTakesExactTime(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	var took sim.Time
	eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		v.Use(p, 3700*sim.Microsecond)
		took = p.Now() - start
	})
	eng.Run()
	if took != 3700*sim.Microsecond {
		t.Errorf("uncapped Use(3.7ms) took %v", took)
	}
	if d.CPUTime() != 3700*sim.Microsecond {
		t.Errorf("CPUTime = %v", d.CPUTime())
	}
	if v.ConsumedTime() != 3700*sim.Microsecond {
		t.Errorf("vcpu consumed = %v", v.ConsumedTime())
	}
}

func TestUseCappedDutyCycle(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	d.SetCap(10) // 1ms of CPU per 10ms window
	var took sim.Time
	eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		v.Use(p, 3*sim.Millisecond)
		took = p.Now() - start
	})
	eng.Run()
	// 1ms in window [0,10), 1ms in [10,20), 1ms in [20,30) -> ~21ms.
	if took < 20*sim.Millisecond || took > 22*sim.Millisecond {
		t.Errorf("capped Use(3ms)@10%% took %v, want ~21ms", took)
	}
	if d.CPUTime() != 3*sim.Millisecond {
		t.Errorf("CPUTime = %v, want exactly the work done", d.CPUTime())
	}
}

func TestCapNeverExceeded(t *testing.T) {
	// A CPU-hog capped at various percentages must never consume more than
	// cap% of any run, measured over whole windows.
	for _, cap := range []int{3, 10, 25, 50} {
		eng := sim.New()
		hv := New(eng, Config{})
		d := hv.CreateDomain("hog", 16<<20, 0)
		v := d.AddVCPU(hv.PCPU(1))
		d.SetCap(cap)
		eng.Go("hog", func(p *sim.Proc) {
			for {
				v.Use(p, 500*sim.Microsecond)
			}
		})
		total := 100 * sim.Millisecond
		eng.RunUntil(total)
		got := d.CPUTime()
		want := total * sim.Time(cap) / 100
		if got > want {
			t.Errorf("cap=%d%%: consumed %v > allowed %v", cap, got, want)
		}
		// And the cap should be approximately achieved (within one window's
		// share + one Use chunk of slack).
		slack := hv.Config().CapPeriod*sim.Time(cap)/100 + 500*sim.Microsecond
		if got < want-slack {
			t.Errorf("cap=%d%%: consumed %v, expected close to %v", cap, got, want)
		}
		eng.Shutdown()
	}
}

func TestSetCapClamps(t *testing.T) {
	_, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	d.SetCap(-5)
	if d.Cap() != 0 {
		t.Errorf("cap = %d, want 0", d.Cap())
	}
	d.SetCap(250)
	if d.Cap() != 100 {
		t.Errorf("cap = %d, want 100", d.Cap())
	}
}

func TestSetCapMidRun(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	eng.Go("hog", func(p *sim.Proc) {
		for {
			v.Use(p, sim.Millisecond)
		}
	})
	eng.RunUntil(50 * sim.Millisecond)
	before := d.CPUTime()
	if before < 49*sim.Millisecond {
		t.Fatalf("uncapped hog consumed only %v", before)
	}
	d.SetCap(20)
	eng.RunUntil(150 * sim.Millisecond)
	delta := d.CPUTime() - before
	want := 20 * sim.Millisecond // 20% of the remaining 100ms
	if delta > want+2*sim.Millisecond || delta < want-3*sim.Millisecond {
		t.Errorf("after SetCap(20): consumed %v of 100ms, want ~%v", delta, want)
	}
	// Remove the cap: consumption returns to full rate.
	d.SetCap(0)
	at := d.CPUTime()
	eng.RunUntil(200 * sim.Millisecond)
	if got := d.CPUTime() - at; got < 49*sim.Millisecond {
		t.Errorf("after uncapping consumed %v of 50ms", got)
	}
	eng.Shutdown()
}

func TestWeightedSharing(t *testing.T) {
	eng, hv := newTestHV(t)
	a := hv.CreateDomain("a", 16<<20, 512)
	b := hv.CreateDomain("b", 16<<20, 256)
	va := a.AddVCPU(hv.PCPU(1))
	vb := b.AddVCPU(hv.PCPU(1)) // same PCPU: contention
	hog := func(v *VCPU) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for {
				v.Use(p, 200*sim.Microsecond)
			}
		}
	}
	eng.Go("a", hog(va))
	eng.Go("b", hog(vb))
	eng.RunUntil(300 * sim.Millisecond)
	ca, cb := a.CPUTime(), b.CPUTime()
	if ca+cb < 295*sim.Millisecond {
		t.Errorf("PCPU left idle under load: %v + %v", ca, cb)
	}
	// Stride scheduling at 1ms tick granularity over 10ms windows gives a
	// 7:3 in-window split for 2:1 weights; accept the quantized band.
	ratio := float64(ca) / float64(cb)
	if ratio < 1.6 || ratio > 2.5 {
		t.Errorf("weight 512:256 gave consumption ratio %.2f, want ~2", ratio)
	}
	eng.Shutdown()
}

func TestTwoVCPUsSeparatePCPUsIndependent(t *testing.T) {
	eng, hv := newTestHV(t)
	a := hv.CreateDomain("a", 16<<20, 0)
	b := hv.CreateDomain("b", 16<<20, 0)
	va := a.AddVCPU(hv.PCPU(0))
	vb := b.AddVCPU(hv.PCPU(1))
	var ta, tb sim.Time
	eng.Go("a", func(p *sim.Proc) {
		s := p.Now()
		va.Use(p, 5*sim.Millisecond)
		ta = p.Now() - s
	})
	eng.Go("b", func(p *sim.Proc) {
		s := p.Now()
		vb.Use(p, 5*sim.Millisecond)
		tb = p.Now() - s
	})
	eng.Run()
	if ta != 5*sim.Millisecond || tb != 5*sim.Millisecond {
		t.Errorf("pinned VCPUs interfered: %v, %v", ta, tb)
	}
}

func TestIntraVMSerialization(t *testing.T) {
	// Two guest threads on one VCPU serialize: total elapsed = sum of work.
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	var end1, end2 sim.Time
	eng.Go("t1", func(p *sim.Proc) {
		v.Use(p, 2*sim.Millisecond)
		end1 = p.Now()
	})
	eng.Go("t2", func(p *sim.Proc) {
		v.Use(p, 3*sim.Millisecond)
		end2 = p.Now()
	})
	eng.Run()
	last := end1
	if end2 > last {
		last = end2
	}
	if last != 5*sim.Millisecond {
		t.Errorf("two threads on one VCPU finished at %v, want 5ms total", last)
	}
}

func TestSpinWaitSignalWakes(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	sig := sim.NewSignal(eng)
	ready := false
	eng.Schedule(300*sim.Microsecond, func() {
		ready = true
		sig.Broadcast()
	})
	var busy, elapsed sim.Time
	eng.Go("poller", func(p *sim.Proc) {
		busy, elapsed = v.SpinWait(p, sig, func() bool { return ready })
	})
	eng.Run()
	if elapsed != 300*sim.Microsecond {
		t.Errorf("elapsed = %v, want 300µs", elapsed)
	}
	// Uncapped spinning burns CPU the whole time.
	if busy != elapsed {
		t.Errorf("uncapped busy = %v, elapsed = %v: should be equal", busy, elapsed)
	}
}

func TestSpinWaitImmediateCondition(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	sig := sim.NewSignal(eng)
	var busy, elapsed sim.Time
	eng.Go("poller", func(p *sim.Proc) {
		busy, elapsed = v.SpinWait(p, sig, func() bool { return true })
	})
	eng.Run()
	if busy != 0 || elapsed != 0 {
		t.Errorf("already-true condition: busy=%v elapsed=%v", busy, elapsed)
	}
}

func TestSpinWaitCappedElapsedExceedsBusy(t *testing.T) {
	// A capped poller's wall wait stretches: it only burns CPU in its duty
	// windows, and if the event lands while descheduled it reacts late.
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	d.SetCap(10)
	sig := sim.NewSignal(eng)
	ready := false
	eng.Schedule(5*sim.Millisecond, func() { // mid-window: poller descheduled
		ready = true
		sig.Broadcast()
	})
	var busy, elapsed sim.Time
	eng.Go("poller", func(p *sim.Proc) {
		busy, elapsed = v.SpinWait(p, sig, func() bool { return ready })
	})
	eng.Run()
	if elapsed < 10*sim.Millisecond {
		t.Errorf("capped poller noticed at %v, want >= next window (10ms)", elapsed)
	}
	if busy >= elapsed {
		t.Errorf("capped busy=%v should be well below elapsed=%v", busy, elapsed)
	}
}

func TestCPUTimeAccountingWithSpin(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	sig := sim.NewSignal(eng)
	fired := false
	eng.Schedule(2*sim.Millisecond, func() { fired = true; sig.Broadcast() })
	eng.Go("app", func(p *sim.Proc) {
		v.Use(p, sim.Millisecond)
		v.SpinWait(p, sig, func() bool { return fired })
	})
	eng.Run()
	if d.CPUTime() != 2*sim.Millisecond {
		t.Errorf("CPUTime = %v, want 2ms (1ms compute + 1ms spin)", d.CPUTime())
	}
}

func TestPCPUBusyTime(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(2))
	eng.Go("app", func(p *sim.Proc) { v.Use(p, 4*sim.Millisecond) })
	eng.Run()
	if hv.PCPU(2).BusyTime() != 4*sim.Millisecond {
		t.Errorf("BusyTime = %v", hv.PCPU(2).BusyTime())
	}
	if hv.PCPU(1).BusyTime() != 0 {
		t.Errorf("idle PCPU busy = %v", hv.PCPU(1).BusyTime())
	}
}

func TestShortUseRefundsBudget(t *testing.T) {
	// Many short Uses under a tight cap must not burn budget they didn't
	// consume: 10 × 30µs = 300µs fits exactly in a 3% window (300µs).
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	d.SetCap(3)
	done := 0
	eng.Go("app", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			v.Use(p, 30*sim.Microsecond)
			p.Sleep(10 * sim.Microsecond) // idle gap: VCPU released
			done++
		}
	})
	eng.RunUntil(9 * sim.Millisecond) // still within first window
	if done != 10 {
		t.Errorf("completed %d/10 short uses in first window; grant remainder not refunded", done)
	}
}

func TestMapForeignRange(t *testing.T) {
	_, hv := newTestHV(t)
	d := hv.CreateDomain("g", 1<<20, 0)
	addr := d.Memory().Alloc(64, 8)
	d.Memory().WriteU32(addr, 0xabcd)
	r, err := hv.MapForeignRange(d.ID(), addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadU32(0) != 0xabcd {
		t.Error("introspection does not see guest memory")
	}
	// Mapping is live: later guest writes visible.
	d.Memory().WriteU32(addr, 0x1234)
	if r.ReadU32(0) != 0x1234 {
		t.Error("mapping is not live")
	}
	if _, err := hv.MapForeignRange(DomID(42), 0, 16); err == nil {
		t.Error("mapping unknown domain should fail")
	}
}

func TestUseZeroIsNoop(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	eng.Go("app", func(p *sim.Proc) {
		v.Use(p, 0)
		v.Use(p, -5)
		if p.Now() != 0 {
			t.Errorf("zero Use advanced time to %v", p.Now())
		}
	})
	eng.Run()
}

func TestVCPUString(t *testing.T) {
	_, hv := newTestHV(t)
	d := hv.CreateDomain("guestX", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(0))
	if v.String() != "guestX/v0" {
		t.Errorf("String = %q", v.String())
	}
	if v.Domain() != d || v.PCPU() != hv.PCPU(0) || v.ID() != 0 {
		t.Error("accessors broken")
	}
}

func TestMultiVCPUDomain(t *testing.T) {
	// An SMP guest: two VCPUs on two PCPUs run truly in parallel, and the
	// domain's cap applies per VCPU (as Xen's cap is per-VCPU percent).
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("smp", 16<<20, 0)
	v0 := d.AddVCPU(hv.PCPU(1))
	v1 := d.AddVCPU(hv.PCPU(2))
	if v0.ID() != 0 || v1.ID() != 1 || len(d.VCPUs()) != 2 {
		t.Fatal("VCPU ids")
	}
	var t0, t1 sim.Time
	eng.Go("w0", func(p *sim.Proc) {
		v0.Use(p, 5*sim.Millisecond)
		t0 = p.Now()
	})
	eng.Go("w1", func(p *sim.Proc) {
		v1.Use(p, 5*sim.Millisecond)
		t1 = p.Now()
	})
	eng.Run()
	if t0 != 5*sim.Millisecond || t1 != 5*sim.Millisecond {
		t.Errorf("parallel VCPUs finished at %v/%v, want 5ms each", t0, t1)
	}
	if d.CPUTime() != 10*sim.Millisecond {
		t.Errorf("domain CPU time %v, want 10ms across 2 VCPUs", d.CPUTime())
	}
}

func TestCPUTimeConservation(t *testing.T) {
	// Property: under arbitrary random workloads, per-PCPU consumed time
	// never exceeds elapsed time, and per-domain consumption under a cap
	// never exceeds cap% of elapsed (+1 window of slack).
	eng := sim.New()
	hv := New(eng, Config{NumPCPUs: 3})
	r := sim.NewRand(7)
	type domSpec struct {
		dom *Domain
		cap int
	}
	var specs []domSpec
	for i := 0; i < 5; i++ {
		d := hv.CreateDomain("d", 16<<20, 128+r.Intn(512))
		v := d.AddVCPU(hv.PCPU(i % 3))
		cap := 0
		if i%2 == 1 {
			cap = 5 + r.Intn(60)
		}
		d.SetCap(cap)
		specs = append(specs, domSpec{d, cap})
		vv := v
		eng.Go("w", func(p *sim.Proc) {
			rr := sim.NewRand(int64(i))
			for {
				vv.Use(p, sim.Time(rr.Intn(300)+1)*sim.Microsecond)
				if rr.Float64() < 0.3 {
					p.Sleep(sim.Time(rr.Intn(200)) * sim.Microsecond)
				}
			}
		})
	}
	elapsed := 200 * sim.Millisecond
	eng.RunUntil(elapsed)
	var total sim.Time
	for _, s := range specs {
		got := s.dom.CPUTime()
		total += got
		if s.cap > 0 {
			allowed := elapsed*sim.Time(s.cap)/100 + hv.Config().CapPeriod
			if got > allowed {
				t.Errorf("dom cap=%d consumed %v > allowed %v", s.cap, got, allowed)
			}
		}
	}
	var busy sim.Time
	for i := 0; i < hv.NumPCPUs(); i++ {
		busy += hv.PCPU(i).BusyTime()
		if hv.PCPU(i).BusyTime() > elapsed {
			t.Errorf("PCPU %d busy %v > elapsed %v", i, hv.PCPU(i).BusyTime(), elapsed)
		}
	}
	if total != busy {
		t.Errorf("domain total %v != PCPU busy total %v", total, busy)
	}
	eng.Shutdown()
}

func TestKilledProcReleasesVCPU(t *testing.T) {
	eng, hv := newTestHV(t)
	d := hv.CreateDomain("g", 16<<20, 0)
	v := d.AddVCPU(hv.PCPU(1))
	victim := eng.Go("victim", func(p *sim.Proc) {
		v.Use(p, 100*sim.Millisecond)
	})
	eng.Schedule(sim.Millisecond, func() { victim.Kill() })
	done := false
	eng.Go("next", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		v.Use(p, sim.Millisecond) // must not deadlock on a dead owner
		done = true
	})
	eng.RunUntil(sim.Second)
	if !done {
		t.Error("VCPU not released by killed process")
	}
}
