// Package xen models the hypervisor substrate the paper runs on: domains
// (dom0 + guests), VCPUs pinned to PCPUs, a credit-style proportional-share
// scheduler with per-domain CPU caps, and the two dom0 facilities ResEx
// depends on — XenStat-like CPU accounting and xc_map_foreign_range-style
// memory introspection.
//
// Scheduling model. Real Xen's credit scheduler gives each domain credits
// proportional to its weight every accounting period and enforces an
// optional cap: a domain may not exceed cap% of a CPU per period even when
// the CPU is otherwise idle. We reproduce that contract: time is divided
// into cap windows (default 10 ms, the paper's time slice); at each window
// boundary every VCPU's budget is refilled to cap% of the window (full
// window when uncapped); the per-PCPU scheduler hands out grants of at most
// one tick (default 1 ms) to the runnable VCPU with the smallest
// weight-normalized consumption. Grants are not preempted mid-flight — a
// waking VCPU waits for the current grant to expire (≤ 1 tick), which is a
// finer preemption granularity than real Xen's 10 ms ticker.
//
// The cap is the *only* actuator ResEx has over a VMM-bypass device, so the
// fidelity that matters is: a VM capped at C% gets at most C% of a PCPU per
// window, with the remainder of the window spent descheduled. That property
// is enforced exactly and covered by tests.
package xen

import (
	"fmt"

	"resex/internal/guestmem"
	"resex/internal/sim"
)

// Config parameterizes the hypervisor.
type Config struct {
	// NumPCPUs is the number of physical CPUs. Default 4.
	NumPCPUs int
	// CapPeriod is the window over which CPU caps are enforced (the
	// scheduler time slice of the paper). Default 10 ms.
	CapPeriod sim.Time
	// Tick is the maximum length of a single scheduling grant; it bounds
	// how stale a scheduling decision can get. Default 1 ms.
	Tick sim.Time
}

func (c Config) withDefaults() Config {
	if c.NumPCPUs <= 0 {
		c.NumPCPUs = 4
	}
	if c.CapPeriod <= 0 {
		c.CapPeriod = 10 * sim.Millisecond
	}
	if c.Tick <= 0 {
		c.Tick = sim.Millisecond
	}
	if c.Tick > c.CapPeriod {
		c.Tick = c.CapPeriod
	}
	return c
}

// DomID identifies a domain; dom0 is 0.
type DomID int

// Hypervisor is one physical machine's VMM instance.
type Hypervisor struct {
	eng     *sim.Engine
	cfg     Config
	pcpus   []*PCPU
	domains []*Domain
	nextID  DomID
}

// New creates a hypervisor with a dom0 (512 MB, weight 256) already booted.
func New(eng *sim.Engine, cfg Config) *Hypervisor {
	cfg = cfg.withDefaults()
	hv := &Hypervisor{eng: eng, cfg: cfg}
	for i := 0; i < cfg.NumPCPUs; i++ {
		hv.pcpus = append(hv.pcpus, &PCPU{hv: hv, id: i})
	}
	hv.CreateDomain("Domain-0", 512<<20, 256)
	return hv
}

// Engine returns the simulation engine.
func (hv *Hypervisor) Engine() *sim.Engine { return hv.eng }

// Config returns the effective configuration.
func (hv *Hypervisor) Config() Config { return hv.cfg }

// PCPU returns physical CPU i.
func (hv *Hypervisor) PCPU(i int) *PCPU { return hv.pcpus[i] }

// NumPCPUs returns the number of physical CPUs.
func (hv *Hypervisor) NumPCPUs() int { return len(hv.pcpus) }

// Dom0 returns the control domain.
func (hv *Hypervisor) Dom0() *Domain { return hv.domains[0] }

// Domain returns the domain with the given id, or nil.
func (hv *Hypervisor) Domain(id DomID) *Domain {
	for _, d := range hv.domains {
		if d.id == id {
			return d
		}
	}
	return nil
}

// Domains returns all domains in creation order (dom0 first).
func (hv *Hypervisor) Domains() []*Domain { return hv.domains }

// CreateDomain boots a new domain with the given memory size and scheduler
// weight. It starts uncapped with no VCPUs; attach VCPUs with AddVCPU.
func (hv *Hypervisor) CreateDomain(name string, memBytes uint64, weight int) *Domain {
	if weight <= 0 {
		weight = 256
	}
	d := &Domain{
		hv:     hv,
		id:     hv.nextID,
		name:   name,
		mem:    guestmem.NewSpace(memBytes),
		weight: weight,
	}
	hv.nextID++
	hv.domains = append(hv.domains, d)
	return d
}

// MapForeignRange maps [addr, addr+n) of the target domain's memory into the
// caller, as dom0 tools do with xc_map_foreign_range. The returned region
// aliases live guest memory: subsequent guest or device writes are visible
// through it. This is the introspection primitive IBMon is built on.
func (hv *Hypervisor) MapForeignRange(id DomID, addr guestmem.Addr, n uint64) (*guestmem.Region, error) {
	d := hv.Domain(id)
	if d == nil {
		return nil, fmt.Errorf("xen: no domain %d", id)
	}
	return guestmem.NewRegion(d.mem, addr, n), nil
}

// Domain is a virtual machine (or dom0).
type Domain struct {
	hv       *Hypervisor
	id       DomID
	name     string
	mem      *guestmem.Space
	vcpus    []*VCPU
	weight   int
	cap      int // percent of one PCPU per window; 0 = uncapped
	consumed sim.Time
	onCap    func(old, new int)
}

// ID returns the domain id.
func (d *Domain) ID() DomID { return d.id }

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Memory returns the domain's guest-physical memory.
func (d *Domain) Memory() *guestmem.Space { return d.mem }

// Weight returns the scheduler weight.
func (d *Domain) Weight() int { return d.weight }

// VCPUs returns the domain's virtual CPUs.
func (d *Domain) VCPUs() []*VCPU { return d.vcpus }

// CPUTime returns the cumulative CPU time consumed by all the domain's
// VCPUs. This is the XenStat counter ResEx differentiates per interval to
// obtain "CPU percent used".
func (d *Domain) CPUTime() sim.Time { return d.consumed }

// Cap returns the current CPU cap in percent (0 = uncapped).
func (d *Domain) Cap() int { return d.cap }

// SetCap sets the CPU cap in percent of one PCPU per window; 0 removes the
// cap. Values are clamped to [0, 100]. Mid-window, the remaining budget is
// adjusted immediately (never below what was already consumed).
func (d *Domain) SetCap(pct int) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	old := d.cap
	d.cap = pct
	if d.onCap != nil && old != pct {
		d.onCap(old, pct)
	}
	for _, v := range d.vcpus {
		v.refresh(d.hv.eng.Now() / d.hv.cfg.CapPeriod)
		v.budget = v.capShare() - v.windowUsed
		if v.budget < 0 {
			v.budget = 0
		}
		v.pcpu.maybeReschedule()
	}
}

// DestroyDomain tears a domain down: its VCPUs are detached from their
// PCPUs (any active grant is revoked) and the domain is removed from the
// hypervisor's registry, as xl destroy does. The caller must have stopped
// every guest process still blocked on the domain's VCPUs — a thread parked
// in Use/SpinWait on a detached VCPU would never be scheduled again.
// Destroying dom0 is not allowed.
func (hv *Hypervisor) DestroyDomain(d *Domain) {
	if d == hv.domains[0] {
		panic("xen: cannot destroy dom0")
	}
	for _, v := range d.vcpus {
		v.detach()
	}
	for i, dd := range hv.domains {
		if dd == d {
			hv.domains = append(hv.domains[:i], hv.domains[i+1:]...)
			break
		}
	}
}

// detach unpins the VCPU from its PCPU, revoking an in-flight grant, so the
// PCPU can be reassigned (live migration frees the source host's PCPU).
func (v *VCPU) detach() {
	c := v.pcpu
	if c.current == v {
		c.grantTimer.Stop()
		v.running = false
		c.current = nil
	}
	for i, w := range c.vcpus {
		if w == v {
			c.vcpus = append(c.vcpus[:i], c.vcpus[i+1:]...)
			break
		}
	}
	c.maybeReschedule()
}

// AddVCPU creates a VCPU for the domain pinned to the given PCPU.
func (d *Domain) AddVCPU(pcpu *PCPU) *VCPU {
	v := &VCPU{
		dom:      d,
		pcpu:     pcpu,
		id:       len(d.vcpus),
		grantSig: sim.NewSignal(d.hv.eng),
		mutexSig: sim.NewSignal(d.hv.eng),
	}
	v.budget = v.capShare()
	d.vcpus = append(d.vcpus, v)
	pcpu.vcpus = append(pcpu.vcpus, v)
	return v
}

// Hypervisor returns the owning hypervisor.
func (d *Domain) Hypervisor() *Hypervisor { return d.hv }

// ObserveCap registers fn to run synchronously whenever SetCap changes the
// domain's effective cap, with the old and new percentages. At most one
// observer is supported (last registration wins); pass nil to clear. The
// invariant auditor uses this to track the loosest cap in force across a
// sampling span, so a mid-window cap change never reads as a violation.
func (d *Domain) ObserveCap(fn func(old, new int)) { d.onCap = fn }
