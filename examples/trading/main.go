// Trading: the paper's motivating scenario end to end.
//
// An electronic exchange (think ICE/CME) hosts its matching gateway in a VM
// with strict latency expectations. The operator wants to consolidate a
// market-analytics batch job onto the same machine. This example measures
// the gateway's latency distribution in four deployments:
//
//  1. alone on the host (the conservative, underutilized status quo),
//  2. consolidated with the analytics job, no management,
//  3. consolidated under ResEx/FreeMarket,
//  4. consolidated under ResEx/IOShares,
//
// and prints the p50/p99/max comparison — the numbers an exchange operator
// would look at before agreeing to consolidation.
//
// Run it with:
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"log"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/ibmon"
	"resex/internal/resex"
	"resex/internal/sim"
)

// deployment runs one configuration for a virtual second and returns the
// gateway's latency sample.
func deployment(consolidated bool, policy resex.Policy) benchex.ClientStats {
	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)

	gateway, err := tb.NewApp("gateway", hostA, hostB,
		benchex.ServerConfig{BufferSize: 64 << 10},
		benchex.ClientConfig{BufferSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}

	var mgr *resex.Manager
	if policy != nil {
		dom0 := hostA.Dom0VCPU()
		mon := ibmon.New(hostA.HV, dom0, ibmon.Config{})
		mgr = resex.New(tb.Eng, hostA.HV, mon, dom0, policy, resex.Config{})
		if _, err := mgr.Manage(gateway.ServerVM.Dom, gateway.Server.SendCQ(), 250); err != nil {
			log.Fatal(err)
		}
		benchex.NewAgent(gateway.Server, gateway.ServerVM.Dom.ID(), mgr, benchex.AgentConfig{}).Start()
		mon.Start(tb.Eng)
		mgr.Start()
	}

	if consolidated {
		analytics, err := tb.NewApp("analytics", hostA, hostB,
			benchex.ServerConfig{BufferSize: 2 << 20, ProcessTime: 2 * sim.Millisecond, PipelineResponses: true},
			benchex.ClientConfig{BufferSize: 2 << 20, Window: 16, Interval: 2500 * sim.Microsecond})
		if err != nil {
			log.Fatal(err)
		}
		if mgr != nil {
			if _, err := mgr.Manage(analytics.ServerVM.Dom, analytics.Server.SendCQ(), 0); err != nil {
				log.Fatal(err)
			}
		}
		analytics.Start()
	}

	gateway.Start()
	tb.Eng.RunUntil(sim.Second)
	stats := gateway.Client.Stats()
	tb.Eng.Shutdown()
	return stats
}

func main() {
	fmt.Println("Exchange gateway latency under four deployments (1s virtual time each):")
	fmt.Printf("\n%-28s %10s %10s %10s %10s\n", "deployment", "mean(µs)", "p50", "p99", "max")
	rows := []struct {
		name         string
		consolidated bool
		policy       resex.Policy
	}{
		{"dedicated host", false, nil},
		{"consolidated, unmanaged", true, nil},
		{"consolidated + FreeMarket", true, resex.NewFreeMarket()},
		{"consolidated + IOShares", true, resex.NewIOShares()},
	}
	for _, row := range rows {
		cs := deployment(row.consolidated, row.policy)
		fmt.Printf("%-28s %10.1f %10.1f %10.1f %10.1f\n", row.name,
			cs.Latency.Mean(), cs.Sample.Quantile(0.5), cs.Sample.Quantile(0.99), cs.Latency.Max())
	}
	fmt.Println("\nIOShares keeps the consolidated gateway near its dedicated-host latency,")
	fmt.Println("which is what makes consolidation acceptable for latency-sensitive tenants.")
}
