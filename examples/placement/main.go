// Placement: the fleet layer above per-host ResEx.
//
// Four worker hosts, each with its own IBMon monitor and ResEx/IOShares
// manager, plus a shared client host. Eight workloads — six latency-
// sensitive trading servers and two 2MB bulk movers — arrive one by one
// and are placed by the interference-aware filter → score → bind pipeline.
// A rebalancer consumes the per-host epoch summaries and live-migrates VMs
// when throttling alone cannot restore an SLA.
//
// Run it with:
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"os"

	"resex/internal/placement"
	"resex/internal/sim"
)

func main() {
	// 1. Build the fleet: 4 worker hosts behind one switch, a client host
	//    sized to hold every workload's client VM, one ResEx manager and
	//    IBMon monitor per worker, and the interference-aware pipeline as
	//    the placement strategy (the default).
	f := placement.NewFleet(placement.Config{Hosts: 4, ClientPCPUs: 10, Seed: 1})

	// 2. The workload mix, in arrival order: trading servers with a latency
	//    SLA interleaved with 2 MB bulk movers — the colocation the paper
	//    shows is fatal. The pipeline steers the bulks onto their own hosts
	//    as they arrive.
	trading := func(i int) placement.Workload {
		return placement.Workload{
			Name:             fmt.Sprintf("trading%d", i),
			BufferSize:       64 << 10,
			LatencySensitive: true,
			SLAUs:            240,
			Window:           1,
			Seed:             int64(i + 1),
		}
	}
	bulk := func(i int) placement.Workload {
		return placement.Workload{
			Name:              fmt.Sprintf("bulk%d", i),
			BufferSize:        2 << 20,
			Window:            16,
			Interval:          3700 * sim.Microsecond,
			Bursty:            true,
			ProcessTime:       2 * sim.Millisecond,
			PipelineResponses: true,
			Seed:              int64(100 + i),
		}
	}
	workloads := []placement.Workload{
		trading(0), trading(1), bulk(0), trading(2), trading(3), bulk(1),
	}

	// 3. Stagger the arrivals: one placement decision every 25 ms, like
	//    VMs being provisioned onto a running cluster.
	f.TB.Eng.Go("arrivals", func(p *sim.Proc) {
		for _, w := range workloads {
			if _, err := f.Place(w); err != nil {
				log.Fatal(err)
			}
			p.Sleep(25 * sim.Millisecond)
		}
	})

	// 4. The rebalancer: every ResEx epoch it checks the breach counters
	//    fed by each host's epoch summaries and live-migrates an
	//    interferer (or the victim) when a host is throttled out.
	rb := placement.NewRebalancer(f, placement.RebalanceConfig{Every: 1})
	rb.Start()

	// 5. Run two virtual seconds.
	f.TB.Eng.RunUntil(2 * sim.Second)

	// 6. Report: where everything landed and how it performed.
	fmt.Println("placements:")
	for _, pl := range f.Placements() {
		class := "bulk"
		if pl.Spec.LatencySensitive {
			class = "latency"
		}
		st := pl.App.Server.Stats()
		fmt.Printf("  %-9s %-8s node%d  migrations %d  served %6d  mean %7.1f µs\n",
			pl.Spec.Name, class, f.Workers[pl.HostIdx].Node,
			pl.Migrations, st.Served, st.Total.Mean())
	}
	fmt.Println("\nscheduler event log:")
	f.Log.WriteText(os.Stdout)
	f.TB.Eng.Shutdown()
}
