// Workload: the multi-tenant traffic engine end to end.
//
// A provider consolidates three tenant classes onto one managed host:
//
//   - "api": a latency-sensitive closed-loop service — one user, think time
//     zero, an SLA reference with the host's ResEx manager and a client-side
//     p99 SLO tracked as time-weighted attainment,
//   - "web": an open-loop front end whose Poisson arrivals swing sinusoidally
//     over a compressed day/night cycle (Diurnal), with a queue-cap admission
//     hook so a traffic spike sheds instead of building an unbounded backlog,
//   - "bulk": a 2 MB bursty mover (two-state MMPP) with no SLA — the
//     interferer the paper's scenario is built around.
//
// The same rig runs twice — unmanaged, then under ResEx/IOShares — and the
// per-tenant tables show what management buys: the api tenant's p99 and SLO
// attainment recover while the bulk tenant pays for its interference with
// CPU caps and throughput.
//
// Run it with:
//
//	go run ./examples/workload
package main

import (
	"fmt"
	"log"

	"resex/internal/experiments"
	"resex/internal/resex"
	"resex/internal/sim"
	"resex/internal/workload"
)

// run boots the three-tenant rig under the given policy (nil = unmanaged),
// runs 200 ms of warmup plus 2 s measured, and returns the tenants.
func run(policy func() resex.Policy) []*workload.Tenant {
	e := workload.New(workload.Config{Hosts: 1, ClientPCPUs: 8, Policy: policy})

	// The api tenant mirrors the paper's reporter: window 1, so every
	// service-time inflation lands in the in-VM agent's report.
	if _, err := e.AddTenant(workload.TenantSpec{
		Name:             "api",
		Closed:           workload.ClosedLoop{Concurrency: 1},
		SLO:              workload.SLOSpec{P99Us: 2 * experiments.BaseSLAUs},
		SLAUs:            experiments.BaseSLAUs,
		LatencySensitive: true,
		Seed:             1,
	}); err != nil {
		log.Fatal(err)
	}

	// The web tenant is open loop: arrivals keep coming whether or not the
	// host keeps up, modulated over four "days" of 500 ms each. The queue
	// cap sheds load once 64 admitted requests are waiting.
	if _, err := e.AddTenant(workload.TenantSpec{
		Name: "web",
		Arrivals: workload.Diurnal{
			MeanRate:  1200,
			Amplitude: 0.6,
			Period:    500 * sim.Millisecond,
		},
		SLO:       workload.SLOSpec{P99Us: 4 * experiments.BaseSLAUs},
		Admission: workload.QueueCap{Max: 16},
		Seed:      2,
	}); err != nil {
		log.Fatal(err)
	}

	// The bulk tenant is the scenario interferer reshaped as a tenant:
	// 2 MB requests in calm/burst phases, pipelined responses, no SLA —
	// managed and attributable, but never a self-declared victim.
	if _, err := e.AddTenant(workload.TenantSpec{
		Name:       "bulk",
		BufferSize: experiments.IntfBuffer,
		Arrivals: &workload.MMPP2{
			CalmRate: 150, BurstRate: 800,
			CalmDwell: 40 * sim.Millisecond, BurstDwell: 10 * sim.Millisecond,
		},
		Window:         16,
		ProcessTime:    2 * sim.Millisecond,
		PipelineServer: true,
		Seed:           3,
	}); err != nil {
		log.Fatal(err)
	}

	e.RunMeasured(200*sim.Millisecond, 2*sim.Second)
	return e.Tenants()
}

func show(tenants []*workload.Tenant) {
	fmt.Printf("%-6s %10s %11s %7s %9s %9s %7s\n",
		"tenant", "offered/s", "completed/s", "shed", "p50(µs)", "p99(µs)", "SLO%")
	for _, t := range tenants {
		st := t.Stats()
		slo := "-"
		if t.Spec.SLO.Constrained() {
			slo = fmt.Sprintf("%.1f", st.AttainPct)
		}
		fmt.Printf("%-6s %10.0f %11.0f %7d %9.0f %9.0f %7s\n",
			t.Spec.Name, st.OfferedPerSec, st.CompletedPerSec,
			st.Shed, st.P50, st.P99, slo)
	}
}

func main() {
	fmt.Println("Three tenant classes consolidated on one host (2s virtual time each):")

	fmt.Println("\n--- unmanaged ---")
	show(run(nil))

	fmt.Println("\n--- ResEx / IOShares ---")
	show(run(func() resex.Policy {
		// Same tuning as the abl-workload experiments: open-loop arrival
		// jitter defeats the deviation trigger, so trigger on the SLA
		// reference alone after a long warmup.
		p := resex.NewIOShares()
		p.UseDeviation = false
		p.WarmupIntervals = 100
		return p
	}))

	fmt.Println("\nUnder IOShares the api tenant's p99 falls back under its SLO and its")
	fmt.Println("attainment recovers; the bulk mover is capped and loses throughput — the")
	fmt.Println("price of interference. The web tenant's shed count stays zero because")
	fmt.Println("the host absorbs its diurnal peak; the queue cap is the safety valve for")
	fmt.Println("when it wouldn't (resexsim -fig abl-workload-burst shows it firing).")
}
