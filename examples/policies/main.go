// Policies: writing a custom pricing policy against the ResEx interface.
//
// The paper frames ResEx as a framework: "its mechanisms and abstractions
// allow multiple 'pricing policies' to be deployed". This example
// implements one from scratch — a progressive-tax policy that charges
// super-linearly for I/O beyond a VM's fair share of the link — and runs it
// against FreeMarket and IOShares on the standard 64KB-vs-2MB workload.
//
// Run it with:
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/ibmon"
	"resex/internal/resex"
	"resex/internal/sim"
)

// ProgressiveTax charges 1 Reso/MTU up to the VM's fair share of the link
// per interval, and rate^2 beyond it; a VM that has overdrawn its account
// is capped in proportion to the overdraft. It needs no latency feedback —
// purely usage-driven, unlike IOShares — which makes it a middle ground
// between FreeMarket's blindness and IOShares' feedback loop.
type ProgressiveTax struct {
	// FairShareMTUs is the per-interval MTU budget charged at base rate.
	FairShareMTUs int64
	// Surcharge multiplies the price of above-share MTUs.
	Surcharge float64
}

// Name implements resex.Policy.
func (p *ProgressiveTax) Name() string { return "ProgressiveTax" }

// Interval implements resex.Policy.
func (p *ProgressiveTax) Interval(m *resex.Manager, d *resex.IntervalData) {
	for i := range d.VMs {
		t := &d.VMs[i]
		within := t.MTUs
		var beyond int64
		if within > p.FairShareMTUs {
			beyond = within - p.FairShareMTUs
			within = p.FairShareMTUs
		}
		t.VM.Account.ChargeIO(within, 1)
		t.VM.Account.ChargeIO(beyond, p.Surcharge)
		t.VM.Account.ChargeCPU(t.CPUPct, 1)
		// Cap in proportion to how deep in the red the account is.
		switch f := t.VM.Account.Fraction(); {
		case f < 0:
			m.ApplyCap(t.VM, 2)
		case f < 0.10:
			m.ApplyCap(t.VM, 100*f)
		default:
			m.ApplyCap(t.VM, 100)
		}
	}
}

// EpochStart implements resex.Policy.
func (p *ProgressiveTax) EpochStart(m *resex.Manager) {
	for _, vm := range m.VMs() {
		m.ApplyCap(vm, 100)
	}
}

// run executes the standard interference workload under one policy.
func run(policy resex.Policy) (repLatency float64, intfThroughputMBs float64) {
	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)
	rep, err := tb.NewApp("rep", hostA, hostB,
		benchex.ServerConfig{BufferSize: 64 << 10},
		benchex.ClientConfig{BufferSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	intf, err := tb.NewApp("intf", hostA, hostB,
		benchex.ServerConfig{BufferSize: 2 << 20, ProcessTime: 2 * sim.Millisecond, PipelineResponses: true},
		benchex.ClientConfig{BufferSize: 2 << 20, Window: 16, Interval: 2500 * sim.Microsecond})
	if err != nil {
		log.Fatal(err)
	}
	dom0 := hostA.Dom0VCPU()
	mon := ibmon.New(hostA.HV, dom0, ibmon.Config{})
	mgr := resex.New(tb.Eng, hostA.HV, mon, dom0, policy, resex.Config{})
	if _, err := mgr.Manage(rep.ServerVM.Dom, rep.Server.SendCQ(), 250); err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.Manage(intf.ServerVM.Dom, intf.Server.SendCQ(), 0); err != nil {
		log.Fatal(err)
	}
	benchex.NewAgent(rep.Server, rep.ServerVM.Dom.ID(), mgr, benchex.AgentConfig{}).Start()
	rep.Start()
	intf.Start()
	mon.Start(tb.Eng)
	mgr.Start()
	const dur = sim.Second
	tb.Eng.RunUntil(dur)
	lat := rep.Server.Stats().Total.Mean()
	bytes := float64(intf.Server.Stats().Served) * float64(2<<20)
	tb.Eng.Shutdown()
	return lat, bytes / dur.Seconds() / 1e6
}

func main() {
	// Fair share: half the link, per 1 ms interval = 524 MTUs.
	policies := []resex.Policy{
		resex.NewFreeMarket(),
		resex.NewIOShares(),
		&ProgressiveTax{FairShareMTUs: 524, Surcharge: 4},
	}
	fmt.Println("Custom policy comparison: 64KB latency app vs 2MB bulk app, 1s each")
	fmt.Printf("\n%-16s %22s %24s\n", "policy", "64KB latency (µs)", "2MB throughput (MB/s)")
	for _, p := range policies {
		lat, thr := run(p)
		fmt.Printf("%-16s %22.1f %24.1f\n", p.Name(), lat, thr)
	}
	fmt.Println("\nProgressiveTax throttles heavy senders without latency feedback;")
	fmt.Println("IOShares reacts only when a victim actually reports SLA violations,")
	fmt.Println("so it preserves more bulk throughput for the same latency recovery.")
}
