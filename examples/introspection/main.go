// Introspection: watching a VM's VMM-bypass I/O without its cooperation.
//
// The defining problem of the paper's setting is that a VMM-bypass HCA
// makes guest I/O invisible to the hypervisor. This example shows the raw
// mechanics of the solution (IBMon): dom0 maps the guest pages that hold
// the completion-queue ring and its doorbell record, and infers everything
// it needs — request count, bytes, MTUs, buffer size, QP number — from
// device-written bytes alone. It then deliberately slows the sampling down
// to show the estimation degrading, reproducing the IBMon paper's
// sampling-rate/accuracy trade-off.
//
// Run it with:
//
//	go run ./examples/introspection
package main

import (
	"fmt"
	"log"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/guestmem"
	"resex/internal/ibmon"
	"resex/internal/sim"
)

func main() {
	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)
	app, err := tb.NewApp("app", hostA, hostB,
		benchex.ServerConfig{BufferSize: 64 << 10, CQDepth: 64},
		benchex.ClientConfig{BufferSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}

	// --- Raw introspection, no IBMon: map the doorbell record ourselves.
	cq := app.Server.SendCQ()
	dbrec, err := hostA.HV.MapForeignRange(app.ServerVM.Dom.ID(), cq.DBRecAddr(), 8)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := hostA.HV.MapForeignRange(app.ServerVM.Dom.ID(), cq.RingAddr(), uint64(cq.Depth())*40)
	if err != nil {
		log.Fatal(err)
	}

	app.Start()
	tb.Eng.RunUntil(10 * sim.Millisecond)

	produced := dbrec.ReadU64(0)
	fmt.Printf("After 10ms: doorbell record says the HCA completed %d sends.\n", produced)
	fmt.Println("Raw parse of the first three CQEs out of guest memory:")
	for i := uint64(0); i < 3 && i < produced; i++ {
		base := (i % uint64(cq.Depth())) * 40
		fmt.Printf("  cqe[%d]: stamp=%d qpn=%d bytes=%d wrid=%#x t=%v\n",
			i, ring.ReadU32(base), ring.ReadU32(base+4), ring.ReadU32(base+8),
			ring.ReadU64(base+16), sim.Time(ring.ReadU64(base+32)))
	}

	// --- IBMon proper, at two sampling rates.
	fmt.Println("\nIBMon accuracy vs sampling period (64-entry CQ):")
	fmt.Printf("%-12s %12s %12s %10s %8s\n", "period", "est-bytes", "true-bytes", "err%", "lost")
	for _, period := range []sim.Time{100 * sim.Microsecond, sim.Millisecond, 10 * sim.Millisecond, 50 * sim.Millisecond} {
		est, truth, lost := measure(period)
		errPct := 100 * float64(est-truth) / float64(truth)
		fmt.Printf("%-12v %12d %12d %9.2f%% %8d\n", period, est, truth, errPct, lost)
	}
	fmt.Println("\nSlow sampling loses overwritten CQEs and falls back to extrapolation;")
	fmt.Println("the doorbell record keeps the completion *count* exact regardless.")
	tb.Eng.Shutdown()
	_ = guestmem.PageSize // quiet linters about the doc-only import
}

// measure runs a fresh workload watched at the given sampling period.
func measure(period sim.Time) (estBytes, trueBytes, lost int64) {
	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)
	app, err := tb.NewApp("app", hostA, hostB,
		benchex.ServerConfig{BufferSize: 64 << 10, CQDepth: 64},
		benchex.ClientConfig{BufferSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	mon := ibmon.New(hostA.HV, hostA.Dom0VCPU(), ibmon.Config{Period: period})
	tgt, err := mon.WatchCQ(app.ServerVM.Dom.ID(), app.Server.SendCQ())
	if err != nil {
		log.Fatal(err)
	}
	app.Start()
	mon.Start(tb.Eng)
	tb.Eng.RunUntil(500 * sim.Millisecond)
	mon.Stop()
	u := tgt.Usage()
	tb.Eng.Shutdown()
	return u.BytesSent, hostA.HCA.BytesSent(), u.Lost
}
