// Quickstart: the smallest complete ResEx setup.
//
// Two physical hosts joined by a simulated InfiniBand switch; a
// latency-sensitive 64KB trading application and a 2MB bulk application
// collocated on host A; IBMon watching both VMs' completion queues from
// dom0; and ResEx running the IOShares congestion-pricing policy.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/ibmon"
	"resex/internal/resex"
	"resex/internal/sim"
)

func main() {
	// 1. Build the testbed: two hosts connected by a 1 GB/s fabric.
	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)

	// 2. A latency-sensitive trading app: server VM on host A, client VM
	//    on host B, 64 KB application buffers.
	trading, err := tb.NewApp("trading", hostA, hostB,
		benchex.ServerConfig{BufferSize: 64 << 10},
		benchex.ClientConfig{BufferSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A collocated bulk app with 2 MB buffers — the noisy neighbor.
	bulk, err := tb.NewApp("bulk", hostA, hostB,
		benchex.ServerConfig{BufferSize: 2 << 20, PipelineResponses: true},
		benchex.ClientConfig{BufferSize: 2 << 20, Window: 8, Interval: 3 * sim.Millisecond})
	if err != nil {
		log.Fatal(err)
	}

	// 4. ResEx in host A's dom0: IBMon introspection + IOShares pricing.
	dom0 := hostA.Dom0VCPU()
	mon := ibmon.New(hostA.HV, dom0, ibmon.Config{})
	mgr := resex.New(tb.Eng, hostA.HV, mon, dom0, resex.NewIOShares(), resex.Config{})
	if _, err := mgr.Manage(trading.ServerVM.Dom, trading.Server.SendCQ(), 250); err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.Manage(bulk.ServerVM.Dom, bulk.Server.SendCQ(), 0); err != nil {
		log.Fatal(err)
	}
	// The trading VM's in-guest agent feeds latency reports to ResEx.
	agent := benchex.NewAgent(trading.Server, trading.ServerVM.Dom.ID(), mgr, benchex.AgentConfig{})

	// 5. Run one virtual second.
	trading.Start()
	bulk.Start()
	agent.Start()
	mon.Start(tb.Eng)
	mgr.Start()
	tb.Eng.RunUntil(sim.Second)

	// 6. Report.
	st := trading.Server.Stats()
	fmt.Printf("trading app: %d requests, service time %.1f µs (std %.1f)\n",
		st.Served, st.Total.Mean(), st.Total.StdDev())
	for _, vm := range mgr.VMs() {
		fmt.Printf("%-16s charging rate %5.2f  cap %3.0f%%  balance %d Resos\n",
			vm.Dom.Name(), vm.Rate(), vm.Cap(), vm.Account.Balance())
	}
	tb.Eng.Shutdown()
}
