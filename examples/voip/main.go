// VoIP: the paper's second motivating workload class — soft-real-time
// media delivery ("server systems performing phone call switching or
// multimedia delivery, which require soft deadlines to be met").
//
// A media VM streams 64 KB frames every 2 ms with a 100 µs delivery
// deadline. This example measures the stream's deadline-miss rate and
// jitter alone, next to a 2 MB bulk workload, and with ResEx/IOShares
// protecting the host.
//
// Run it with:
//
//	go run ./examples/voip
package main

import (
	"fmt"
	"log"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/ibmon"
	"resex/internal/resex"
	"resex/internal/sim"
	"resex/internal/softrt"
)

func run(withBulk, managed bool) softrt.Stats {
	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)
	stream, err := softrt.New(tb, hostA, hostB, softrt.Config{
		Name:      "call",
		FrameSize: 64 << 10,
		Period:    2 * sim.Millisecond,
		Deadline:  100 * sim.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	var mgr *resex.Manager
	if managed {
		dom0 := hostA.Dom0VCPU()
		mon := ibmon.New(hostA.HV, dom0, ibmon.Config{})
		mgr = resex.New(tb.Eng, hostA.HV, mon, dom0, resex.NewIOShares(), resex.Config{})
		// A collocated latency-sensitive app supplies the victim feedback,
		// as in the paper's deployment.
		trading, err := tb.NewApp("trading", hostA, hostB,
			benchex.ServerConfig{BufferSize: 64 << 10},
			benchex.ClientConfig{BufferSize: 64 << 10})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mgr.Manage(trading.ServerVM.Dom, trading.Server.SendCQ(), 240); err != nil {
			log.Fatal(err)
		}
		benchex.NewAgent(trading.Server, trading.ServerVM.Dom.ID(), mgr, benchex.AgentConfig{}).Start()
		trading.Start()
		mon.Start(tb.Eng)
		mgr.Start()
	}
	if withBulk {
		bulk, err := tb.NewApp("bulk", hostA, hostB,
			benchex.ServerConfig{BufferSize: 2 << 20, ProcessTime: 2 * sim.Millisecond, PipelineResponses: true, RecvSlots: 18},
			benchex.ClientConfig{BufferSize: 2 << 20, Window: 16, Interval: 3700 * sim.Microsecond, BurstyArrivals: true, Seed: 999})
		if err != nil {
			log.Fatal(err)
		}
		if mgr != nil {
			if _, err := mgr.Manage(bulk.ServerVM.Dom, bulk.Server.SendCQ(), 0); err != nil {
				log.Fatal(err)
			}
		}
		bulk.Start()
	}

	stream.Start()
	tb.Eng.RunUntil(sim.Second)
	s := stream.Stats()
	tb.Eng.Shutdown()
	return s
}

func main() {
	fmt.Println("Media stream (64KB frames @ 2ms, 100µs delivery deadline), 1s each:")
	fmt.Printf("\n%-26s %10s %12s %12s %10s\n", "deployment", "frames", "miss rate", "latency(µs)", "jitter")
	for _, row := range []struct {
		name          string
		bulk, managed bool
	}{
		{"dedicated fabric", false, false},
		{"with 2MB bulk neighbor", true, false},
		{"with bulk + IOShares", true, true},
	} {
		s := run(row.bulk, row.managed)
		fmt.Printf("%-26s %10d %11.1f%% %12.1f %10.1f\n",
			row.name, s.Received, s.MissRate()*100, s.Latency.Mean(), s.Jitter.Mean())
	}
	fmt.Println("\nDeadline misses — not averages — are what breaks media delivery;")
	fmt.Println("IOShares converts a broken stream back into a deliverable one.")
}
