package resex

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/experiments"
	"resex/internal/fabric"
	"resex/internal/faults"
	"resex/internal/ibmon"
	"resex/internal/invariant"
	"resex/internal/resex"
	"resex/internal/sim"
)

// benchOpts keeps per-iteration virtual time small enough for the -bench
// runner while long enough for stable shapes. Individual figures can be
// regenerated at full scale with cmd/resexsim.
func benchOpts() experiments.Options {
	return experiments.Options{Duration: 200 * sim.Millisecond, Warmup: 50 * sim.Millisecond}
}

// runFigure executes one registered figure per benchmark iteration.
func runFigure(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1LatencyDistribution regenerates Figure 1 (latency histogram,
// Normal vs Interfered) and reports the two means.
func BenchmarkFig1LatencyDistribution(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.NormalMean, "normal_us")
	b.ReportMetric(last.InterferedMean, "interfered_us")
	b.ReportMetric(last.InterferedStd, "interfered_sd")
}

// BenchmarkFig2MultiServer regenerates Figure 2 (components vs #servers).
func BenchmarkFig2MultiServer(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig3BufferRatio regenerates Figure 3 (cap = 100/BufferRatio)
// and reports the flatness of the capped-latency bars.
func BenchmarkFig3BufferRatio(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := r.Rows[0].Total(), r.Rows[0].Total()
		for _, row := range r.Rows {
			if t := row.Total(); t < lo {
				lo = t
			} else if t > hi {
				hi = t
			}
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "max/min")
}

// BenchmarkFig4CapSweep regenerates Figure 4 (latency vs interferer cap)
// and reports the endpoints.
func BenchmarkFig4CapSweep(b *testing.B) {
	var uncapped, cap3, base float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		uncapped = r.Rows[0].Total()
		cap3 = r.Rows[len(r.Rows)-2].Total()
		base = r.Rows[len(r.Rows)-1].Total()
	}
	b.ReportMetric(uncapped, "uncapped_us")
	b.ReportMetric(cap3, "cap3_us")
	b.ReportMetric(base, "base_us")
}

// BenchmarkFig5FreeMarket regenerates Figure 5 and reports the three-way
// latency comparison.
func BenchmarkFig5FreeMarket(b *testing.B) {
	var r *experiments.TimelineResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig5(experiments.Options{Duration: 1200 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BaseMean, "base_us")
	b.ReportMetric(r.IntfMean, "interfered_us")
	b.ReportMetric(r.PolicyMean, "freemarket_us")
}

// BenchmarkFig6ResoDepletion regenerates Figure 6 and reports how deep the
// interferer's account fell.
func BenchmarkFig6ResoDepletion(b *testing.B) {
	var minFrac float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Options{Duration: 1200 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		minFrac = r.IntfMinFraction
	}
	b.ReportMetric(minFrac*100, "min_balance_pct")
}

// BenchmarkFig7IOShares regenerates Figure 7 and reports the interference
// recovery.
func BenchmarkFig7IOShares(b *testing.B) {
	var r *experiments.TimelineResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig7(experiments.Options{Duration: 400 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BaseMean, "base_us")
	b.ReportMetric(r.IntfMean, "interfered_us")
	b.ReportMetric(r.PolicyMean, "ioshares_us")
	if r.IntfMean > r.BaseMean {
		b.ReportMetric(100*(r.IntfMean-r.PolicyMean)/(r.IntfMean-r.BaseMean), "recovered_pct")
	}
}

// BenchmarkFig8NoInterference regenerates Figure 8.
func BenchmarkFig8NoInterference(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9BufferSweep regenerates Figure 9 and reports the 1MB-buffer
// policy separation.
func BenchmarkFig9BufferSweep(b *testing.B) {
	var fm, ios float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		fm, ios = last.FreeMarket, last.IOShares
	}
	b.ReportMetric(fm, "freemarket_1mb_us")
	b.ReportMetric(ios, "ioshares_1mb_us")
}

// ---------------------------------------------------------------------------
// Ablations: design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// BenchmarkAblationLinkDiscipline compares per-MTU round-robin arbitration
// (IB virtual lanes) against FIFO head-of-line blocking for the reporting
// VM under interference.
func BenchmarkAblationLinkDiscipline(b *testing.B) {
	for _, disc := range []fabric.Discipline{fabric.RoundRobin, fabric.FIFO} {
		disc := disc
		b.Run(disc.String(), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s, err := experiments.Build(experiments.ScenarioConfig{
					IntfBuffer: experiments.IntfBuffer,
					Discipline: disc,
				})
				if err != nil {
					b.Fatal(err)
				}
				s.RunMeasured(benchOpts())
				lat = s.RepStats().Total.Mean()
			}
			b.ReportMetric(lat, "latency_us")
		})
	}
}

// BenchmarkAblationIBMonPeriod sweeps the introspection sampling period and
// reports the byte-estimation error on a deliberately small (16-entry) CQ,
// so slow sampling enters the lossy, extrapolating regime.
func BenchmarkAblationIBMonPeriod(b *testing.B) {
	for _, period := range []sim.Time{100 * sim.Microsecond, sim.Millisecond, 10 * sim.Millisecond} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				tb := cluster.New(cluster.Config{})
				hostA, hostB := tb.AddHost(1), tb.AddHost(2)
				app, err := tb.NewApp("app", hostA, hostB,
					benchex.ServerConfig{BufferSize: 64 << 10, CQDepth: 16},
					benchex.ClientConfig{BufferSize: 64 << 10})
				if err != nil {
					b.Fatal(err)
				}
				mon := ibmon.New(hostA.HV, nil, ibmon.Config{Period: period})
				tgt, err := mon.WatchCQ(app.ServerVM.Dom.ID(), app.Server.SendCQ())
				if err != nil {
					b.Fatal(err)
				}
				app.Start()
				mon.Start(tb.Eng)
				tb.Eng.RunUntil(200 * sim.Millisecond)
				mon.Stop()
				truth := hostA.HCA.BytesSent()
				if truth > 0 {
					errPct = 100 * float64(tgt.Usage().BytesSent-truth) / float64(truth)
					if errPct < 0 {
						errPct = -errPct
					}
				}
				tb.Eng.Shutdown()
			}
			b.ReportMetric(errPct, "abs_err_pct")
		})
	}
}

// BenchmarkAblationInterfererRate sweeps the interference generator's
// request rate, showing how reporting latency scales with offered load.
func BenchmarkAblationInterfererRate(b *testing.B) {
	for _, interval := range []sim.Time{10 * sim.Millisecond, 5 * sim.Millisecond, 2500 * sim.Microsecond} {
		interval := interval
		b.Run(fmt.Sprintf("every-%v", interval), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s, err := experiments.Build(experiments.ScenarioConfig{
					IntfBuffer:   experiments.IntfBuffer,
					IntfInterval: interval,
				})
				if err != nil {
					b.Fatal(err)
				}
				s.RunMeasured(benchOpts())
				lat = s.RepStats().Total.Mean()
			}
			b.ReportMetric(lat, "latency_us")
		})
	}
}

// BenchmarkAblationNICRateLimit compares ResEx's CPU-cap mechanism against
// the per-flow NIC rate limiting of newer adapters (which the paper's
// introduction anticipates): both throttle the 2MB interferer to ~3% of the
// link, but the NIC limit leaves the interferer's CPU untouched. Reported
// metrics: the victim's latency and the interferer's achieved compute.
func BenchmarkAblationNICRateLimit(b *testing.B) {
	run := func(b *testing.B, useNIC bool) {
		var lat, intfCPU float64
		for i := 0; i < b.N; i++ {
			s, err := experiments.Build(experiments.ScenarioConfig{IntfBuffer: experiments.IntfBuffer})
			if err != nil {
				b.Fatal(err)
			}
			if useNIC {
				// The server endpoint QP is the interferer's only sender
				// on host A; pace it to ~3% of the link directly.
				s.Intf.ServerQP.SetRateLimit(30e6)
			} else {
				s.Intf.ServerVM.Dom.SetCap(3)
			}
			s.RunMeasured(benchOpts())
			lat = s.RepStats().Total.Mean()
			intfCPU = s.Intf.ServerVM.Dom.CPUTime().Seconds()
		}
		b.ReportMetric(lat, "victim_latency_us")
		b.ReportMetric(intfCPU, "intf_cpu_s")
	}
	b.Run("cpu-cap-3pct", func(b *testing.B) { run(b, false) })
	b.Run("nic-30MBps", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationEpochLength sweeps FreeMarket's epoch length: shorter
// epochs replenish the interferer sooner and weaken the policy.
func BenchmarkAblationEpochLength(b *testing.B) {
	for _, perEpoch := range []int{250, 1000, 4000} {
		perEpoch := perEpoch
		b.Run(fmt.Sprintf("%d-intervals", perEpoch), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				tb := cluster.New(cluster.Config{})
				hostA, hostB := tb.AddHost(1), tb.AddHost(2)
				rep, err := tb.NewApp("rep", hostA, hostB,
					benchex.ServerConfig{BufferSize: 64 << 10},
					benchex.ClientConfig{BufferSize: 64 << 10})
				if err != nil {
					b.Fatal(err)
				}
				intf, err := tb.NewApp("intf", hostA, hostB,
					benchex.ServerConfig{BufferSize: 2 << 20, ProcessTime: 2 * sim.Millisecond, PipelineResponses: true},
					benchex.ClientConfig{BufferSize: 2 << 20, Window: 16, Interval: 2500 * sim.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				dom0 := hostA.Dom0VCPU()
				mon := ibmon.New(hostA.HV, dom0, ibmon.Config{})
				mgr := resex.New(tb.Eng, hostA.HV, mon, dom0, resex.NewFreeMarket(),
					resex.Config{IntervalsPerEpoch: perEpoch})
				if _, err := mgr.Manage(rep.ServerVM.Dom, rep.Server.SendCQ(), 0); err != nil {
					b.Fatal(err)
				}
				if _, err := mgr.Manage(intf.ServerVM.Dom, intf.Server.SendCQ(), 0); err != nil {
					b.Fatal(err)
				}
				rep.Start()
				intf.Start()
				mon.Start(tb.Eng)
				mgr.Start()
				tb.Eng.RunUntil(1500 * sim.Millisecond)
				lat = rep.Server.Stats().Total.Mean()
				tb.Eng.Shutdown()
			}
			b.ReportMetric(lat, "latency_us")
		})
	}
}

// BenchmarkAblationPollingVsEvents compares busy-polling against
// event-driven completions for a server capped at 10%: spinning burns the
// cap budget, events preserve it for real work.
func BenchmarkAblationPollingVsEvents(b *testing.B) {
	run := func(b *testing.B, eventDriven bool) {
		var served int64
		var lat float64
		for i := 0; i < b.N; i++ {
			tb := cluster.New(cluster.Config{})
			hostA, hostB := tb.AddHost(1), tb.AddHost(2)
			app, err := tb.NewApp("app", hostA, hostB,
				benchex.ServerConfig{BufferSize: 64 << 10, EventDriven: eventDriven},
				benchex.ClientConfig{BufferSize: 64 << 10, Window: 4})
			if err != nil {
				b.Fatal(err)
			}
			app.ServerVM.Dom.SetCap(10)
			app.Start()
			tb.Eng.RunUntil(300 * sim.Millisecond)
			served = app.Server.Stats().Served
			lat = app.Server.Stats().Total.Mean()
			tb.Eng.Shutdown()
		}
		b.ReportMetric(float64(served)/0.3, "req/s")
		b.ReportMetric(lat, "latency_us")
	}
	b.Run("polling", func(b *testing.B) { run(b, false) })
	b.Run("events", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblPlacement regenerates the placement ablation and reports the
// SLA-attainment gap between interference-aware and random placement at the
// larger fleet scale (8 hosts, 16 VMs).
func BenchmarkAblPlacement(b *testing.B) {
	var ia, rd float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblPlacement(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Hosts != 8 {
				continue
			}
			switch row.Strategy {
			case "intf-aware":
				ia = row.SLAPct
			case "random":
				rd = row.SLAPct
			}
		}
	}
	b.ReportMetric(ia, "intf_aware_sla_pct")
	b.ReportMetric(rd, "random_sla_pct")
}

// BenchmarkConsolidationCapacity answers the paper's motivating question —
// exchanges run below 10% utilization, so how many latency-sensitive
// applications can share a host within an SLA? It packs 64KB apps onto
// host A until the first app's mean latency exceeds SLA (base × 1.25) and
// reports the achieved density.
func BenchmarkConsolidationCapacity(b *testing.B) {
	var density int
	for i := 0; i < b.N; i++ {
		density = 0
		for n := 1; n <= 6; n++ {
			tb := cluster.New(cluster.Config{PCPUsPerHost: 8})
			hostA, hostB := tb.AddHost(1), tb.AddHost(2)
			apps := make([]*cluster.App, n)
			for j := range apps {
				app, err := tb.NewApp(fmt.Sprintf("a%d", j), hostA, hostB,
					benchex.ServerConfig{BufferSize: 64 << 10},
					benchex.ClientConfig{BufferSize: 64 << 10, Seed: int64(j + 1)})
				if err != nil {
					b.Fatal(err)
				}
				apps[j] = app
				app.Start()
			}
			tb.Eng.RunUntil(200 * sim.Millisecond)
			worst := 0.0
			for _, app := range apps {
				if m := app.Server.Stats().Total.Mean(); m > worst {
					worst = m
				}
			}
			tb.Eng.Shutdown()
			if worst > 233.5*1.25 {
				break
			}
			density = n
		}
	}
	b.ReportMetric(float64(density), "apps_within_sla")
}

// ---------------------------------------------------------------------------
// Microbenchmarks: simulator core performance (events/sec, messages/sec).
// ---------------------------------------------------------------------------

// BenchmarkEngineEvents measures raw event throughput of the DES core.
// Steady state must be allocation-free: events come from the engine's pool
// and Timer handles are values.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.After(100, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.After(100, tick)
	eng.Run()
}

// BenchmarkHCASmallMessages measures end-to-end message throughput of the
// HCA+fabric stack (1KB sends, completion-driven).
func BenchmarkHCASmallMessages(b *testing.B) {
	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)
	app, err := tb.NewApp("app", hostA, hostB,
		benchex.ServerConfig{BufferSize: 1 << 10},
		benchex.ClientConfig{BufferSize: 1 << 10, Requests: 0, Window: 8})
	if err != nil {
		b.Fatal(err)
	}
	app.Start()
	b.ResetTimer()
	target := int64(b.N)
	for app.Server.Stats().Served < target {
		tb.Eng.RunUntil(tb.Eng.Now() + 10*sim.Millisecond)
	}
	b.StopTimer()
	tb.Eng.Shutdown()
}

// BenchmarkFullStackSimSecond measures wall time per simulated second of
// the complete ResEx/IOShares interference scenario — the repo's main
// "how expensive is a run" number.
func BenchmarkFullStackSimSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Build(experiments.ScenarioConfig{
			IntfBuffer: experiments.IntfBuffer,
			Policy:     resex.NewIOShares(),
			SLAUs:      experiments.BaseSLAUs,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Start()
		s.TB.Eng.RunUntil(sim.Second)
		s.Shutdown()
	}
}

// ---------------------------------------------------------------------------
// Fault injection: end-to-end ablation + hot-loop overhead budget.
// ---------------------------------------------------------------------------

// BenchmarkAblFaults exercises the fault-storm ablation end to end
// (naive and degradation-aware stacks across the intensity sweep).
func BenchmarkAblFaults(b *testing.B) { runFigure(b, "abl-faults") }

// BenchmarkFaultsEmptyScheduleOverhead measures what merely wiring the
// injector — hosts attached, empty schedule armed — costs the hot event
// loop, against the ≤2% budget. One simulated second of the full
// ResEx/IOShares scenario per configuration per iteration; the paired
// timings and overhead are written to BENCH_faults.json.
func BenchmarkFaultsEmptyScheduleOverhead(b *testing.B) {
	run := func(withInjector bool) time.Duration {
		s, err := experiments.Build(experiments.ScenarioConfig{
			IntfBuffer: experiments.IntfBuffer,
			Policy:     resex.NewIOShares(),
			SLAUs:      experiments.BaseSLAUs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if withInjector {
			h := s.TB.Host(1)
			inj := faults.NewInjector(s.TB.Eng)
			inj.AttachHost(faults.HostPorts{
				Node: h.Node, Uplink: h.Uplink, Downlink: h.Downlink,
				HCA: h.HCA, Mon: s.Mon,
			})
			inj.Arm(faults.Schedule{})
		}
		s.Start()
		start := time.Now()
		s.TB.Eng.RunUntil(sim.Second)
		elapsed := time.Since(start)
		s.Shutdown()
		return elapsed
	}
	// Compare the fastest observed run per configuration: the injector
	// adds no events for an empty schedule, so the minimum strips GC and
	// scheduler noise that a sum would count against one side.
	min := func(a, b time.Duration) time.Duration {
		if b < a {
			return b
		}
		return a
	}
	base, armed := time.Duration(1<<62), time.Duration(1<<62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate which configuration runs first so allocator/GC drift
		// within an iteration cancels instead of biasing one side.
		if i%2 == 0 {
			base = min(base, run(false))
			armed = min(armed, run(true))
		} else {
			armed = min(armed, run(true))
			base = min(base, run(false))
		}
	}
	b.StopTimer()
	overhead := 100 * (armed.Seconds() - base.Seconds()) / base.Seconds()
	b.ReportMetric(overhead, "overhead_%")
	out, err := json.MarshalIndent(map[string]any{
		"benchmark":             "BenchmarkFaultsEmptyScheduleOverhead",
		"iterations":            b.N,
		"baseline_ns_per_sim_s": base.Nanoseconds(),
		"armed_ns_per_sim_s":    armed.Nanoseconds(),
		"overhead_pct":          overhead,
		"budget_pct":            2.0,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_faults.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Workload engine: the three abl-workload studies end to end.
// ---------------------------------------------------------------------------

// BenchmarkAblWorkload runs the offered-load sweep (both policies, every
// load point) once per iteration.
func BenchmarkAblWorkload(b *testing.B) { runFigure(b, "abl-workload") }

// BenchmarkAblWorkloadMix runs the mixed-class scenario (unmanaged,
// FreeMarket, IOShares) once per iteration.
func BenchmarkAblWorkloadMix(b *testing.B) { runFigure(b, "abl-workload-mix") }

// ---------------------------------------------------------------------------
// Invariant auditor: hot-loop overhead budget.
// ---------------------------------------------------------------------------

// BenchmarkAuditOverhead measures what -audit costs the hot event loop —
// the per-event stride mask plus the sampled predicate passes — on the full
// ResEx/IOShares interference scenario (the same rig `benchex -intf-buffer
// 2MB -policy ioshares -audit` runs), against the ≤2% budget. Same-process
// paired minima, alternating order, exactly like the faults overhead gate:
// batch-to-batch wall-clock comparisons on a shared machine drown a
// few-percent effect in noise, while the paired minimum strips it. The
// timings land in BENCH_invariant.json.
func BenchmarkAuditOverhead(b *testing.B) {
	run := func(audited bool) time.Duration {
		s, err := experiments.Build(experiments.ScenarioConfig{
			IntfBuffer: experiments.IntfBuffer,
			Policy:     resex.NewIOShares(),
			SLAUs:      experiments.BaseSLAUs,
		})
		if err != nil {
			b.Fatal(err)
		}
		var closeAudit func()
		if audited {
			a := invariant.New(s.TB.Eng, invariant.NewCollector(invariant.Audit))
			for _, h := range s.TB.Hosts {
				a.WatchXen(h.HV)
				a.WatchHCA(h.HCA)
			}
			if s.Mgr != nil {
				a.WatchManager(s.Mgr)
			}
			closeAudit = a.Close
		}
		s.Start()
		start := time.Now()
		s.TB.Eng.RunUntil(sim.Second)
		elapsed := time.Since(start)
		if closeAudit != nil {
			closeAudit()
		}
		s.Shutdown()
		return elapsed
	}
	min := func(a, b time.Duration) time.Duration {
		if b < a {
			return b
		}
		return a
	}
	base, audited := time.Duration(1<<62), time.Duration(1<<62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			base = min(base, run(false))
			audited = min(audited, run(true))
		} else {
			audited = min(audited, run(true))
			base = min(base, run(false))
		}
	}
	b.StopTimer()
	overhead := 100 * (audited.Seconds() - base.Seconds()) / base.Seconds()
	b.ReportMetric(overhead, "overhead_%")
	out, err := json.MarshalIndent(map[string]any{
		"benchmark":             "BenchmarkAuditOverhead",
		"iterations":            b.N,
		"baseline_ns_per_sim_s": base.Nanoseconds(),
		"audited_ns_per_sim_s":  audited.Nanoseconds(),
		"overhead_pct":          overhead,
		"budget_pct":            2.0,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_invariant.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
