package resex

import (
	"container/heap"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"resex/internal/experiments"
	"resex/internal/sim"
)

// ---------------------------------------------------------------------------
// Legacy event-queue replica: the container/heap implementation the zero-alloc
// core replaced. Kept here (test-only) so BenchmarkEngineCore can measure the
// before/after ratio on the machine running the benchmark — absolute ns/op
// vary across CI runners, the speedup of one engine over the other does not.
// ---------------------------------------------------------------------------

type legacyEvent struct {
	at       int64
	seq      uint64
	fn       func()
	index    int
	canceled bool
}

type legacyQueue []*legacyEvent

func (q legacyQueue) Len() int { return len(q) }
func (q legacyQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q legacyQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *legacyQueue) Push(x any) {
	ev := x.(*legacyEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *legacyQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type legacyTimer struct {
	eng *legacyEngine
	ev  *legacyEvent
}

type legacyEngine struct {
	now    int64
	events legacyQueue
	seq    uint64
}

// schedule mirrors the old Engine.Schedule: one heap event allocation plus
// one boxed *Timer handle per call.
func (e *legacyEngine) schedule(at int64, fn func()) *legacyTimer {
	e.seq++
	ev := &legacyEvent{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &legacyTimer{eng: e, ev: ev}
}

func (e *legacyEngine) run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*legacyEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
}

// ---------------------------------------------------------------------------
// BenchmarkEngineCore: before/after event-core comparison + parallel-sweep
// speedup, persisted to BENCH_core.json for the CI bench gate.
// ---------------------------------------------------------------------------

// coreEvents is the fixed self-tick chain length both engines execute per
// measurement. Large enough to amortize setup, small enough for -benchtime=1x
// CI smoke runs.
const coreEvents = 2_000_000

// measureLegacy runs the chain on the container/heap replica, returning wall
// ns and allocation deltas.
func measureLegacy() (elapsed time.Duration, mallocs, bytes uint64) {
	eng := &legacyEngine{}
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < coreEvents {
			eng.schedule(eng.now+100, tick)
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	eng.schedule(eng.now+100, tick)
	eng.run()
	elapsed = time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc
}

// measureCurrent runs the identical chain on the production engine.
func measureCurrent() (elapsed time.Duration, mallocs, bytes uint64) {
	eng := sim.New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < coreEvents {
			eng.After(100, tick)
		}
	}
	// Warm the event pool so the measured window sees the steady state the
	// experiments run in (the pool holds well under 1 MB at cap).
	eng.After(100, func() {})
	eng.Run()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	eng.After(100, tick)
	eng.Run()
	elapsed = time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc
}

// benchEngineJSON is the BENCH_core.json schema; cmd/benchgate reads it.
type benchEngineJSON struct {
	Benchmark string          `json:"benchmark"`
	Events    int             `json:"events"`
	Baseline  benchEngineSide `json:"baseline"`
	Current   benchEngineSide `json:"current"`
	Speedup   float64         `json:"speedup"`
	Sweep     benchSweepJSON  `json:"sweep"`
}

type benchEngineSide struct {
	Engine         string  `json:"engine"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

type benchSweepJSON struct {
	Experiment string `json:"experiment"`
	Workers    int    `json:"workers"`
	// CPUs is the machine's core count: the sweep ratio can only beat 1.0
	// when there are cores for the workers to land on.
	CPUs       int     `json:"cpus"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// Note flags records whose ratio is not meaningful on the recording
	// machine (single-core runners). benchgate prints it instead of
	// silently treating such a sweep as a pass.
	Note string `json:"note,omitempty"`
}

// BenchmarkEngineCore measures the zero-alloc event core against the legacy
// container/heap queue it replaced, plus the parallel sweep runner against
// the serial loop, and records everything in BENCH_core.json. The CI bench
// smoke job runs this at -benchtime=1x and gates on the recorded ratios via
// cmd/benchgate.
func BenchmarkEngineCore(b *testing.B) {
	var out benchEngineJSON
	for i := 0; i < b.N; i++ {
		lElapsed, lMallocs, lBytes := measureLegacy()
		cElapsed, cMallocs, cBytes := measureCurrent()
		side := func(name string, d time.Duration, mallocs, bytes uint64) benchEngineSide {
			ns := float64(d.Nanoseconds()) / coreEvents
			return benchEngineSide{
				Engine:         name,
				NsPerEvent:     ns,
				EventsPerSec:   1e9 / ns,
				AllocsPerEvent: float64(mallocs) / coreEvents,
				BytesPerEvent:  float64(bytes) / coreEvents,
			}
		}
		out = benchEngineJSON{
			Benchmark: "BenchmarkEngineCore",
			Events:    coreEvents,
			Baseline:  side("container/heap", lElapsed, lMallocs, lBytes),
			Current:   side("indexed-4ary+pool+wheel", cElapsed, cMallocs, cBytes),
		}
		out.Speedup = out.Baseline.NsPerEvent / out.Current.NsPerEvent

		// Sweep runner: the same figure serially and on 4 workers. Identical
		// output is asserted by the experiments tests; here we record the
		// wall-clock ratio.
		sweepOpts := experiments.Options{
			Duration: 100 * sim.Millisecond,
			Warmup:   25 * sim.Millisecond,
		}
		serialStart := time.Now()
		if _, err := experiments.AblCapacity(sweepOpts); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(serialStart)
		sweepOpts.Parallel = 4
		parStart := time.Now()
		if _, err := experiments.AblCapacity(sweepOpts); err != nil {
			b.Fatal(err)
		}
		par := time.Since(parStart)
		out.Sweep = benchSweepJSON{
			Experiment: "abl-capacity",
			Workers:    4,
			CPUs:       runtime.NumCPU(),
			SerialMs:   float64(serial.Nanoseconds()) / 1e6,
			ParallelMs: float64(par.Nanoseconds()) / 1e6,
			Speedup:    serial.Seconds() / par.Seconds(),
		}
		if out.Sweep.CPUs == 1 {
			out.Sweep.Note = "single-core machine: 4 workers share 1 CPU, ratio reflects goroutine overhead, not sweep scaling"
		}
	}
	b.ReportMetric(out.Current.EventsPerSec, "events/sec")
	b.ReportMetric(out.Speedup, "core_speedup")
	b.ReportMetric(out.Current.AllocsPerEvent, "allocs/event")
	b.ReportMetric(out.Sweep.Speedup, "sweep_speedup")
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
