// Command resexctl is the control client for resexd. It connects to the
// daemon's unix socket, sends one command as a line of JSON, and prints the
// reply.
//
// Usage:
//
//	resexctl [-socket /tmp/resexd.sock] <verb> [args]
//
// Verbs:
//
//	status                        session cursor, policy, tenants, log size,
//	                              and per-host market lines (epoch, prices,
//	                              trades) when the exchange has settled
//	run                           resume stepping from the current boundary
//	pause                         hold at the next boundary
//	step [n]                      advance n quanta (default 1), then pause
//	run-until <duration>          run to a virtual-time target (e.g. 2s)
//	add-tenant <name> <class> [rate]   class: latency, bulk or open
//	remove-tenant <name>          stop a tenant's traffic
//	policy <name>                 swap pricing policy: none, freemarket,
//	                              ioshares or fungible
//	snapshot <path>               write a verified-restorable snapshot
//	restore <path>                replace the session from a snapshot
//	watch [n]                     stream telemetry samples (n lines, or until ^C)
//	quit                          shut the daemon down
//
// Every verb except watch is a single round trip; exit status is non-zero
// when the daemon rejects the command.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"resex/internal/daemon"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: resexctl [-socket path] <verb> [args]")
	fmt.Fprintln(os.Stderr, "verbs: status run pause step run-until add-tenant remove-tenant policy snapshot restore watch quit")
	os.Exit(2)
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "resexctl: "+format+"\n", args...)
	usage()
}

// build turns argv into a Command, validating arity client-side so mistakes
// fail before they reach the daemon.
func build(args []string) daemon.Command {
	verb := args[0]
	rest := args[1:]
	want := func(n int, shape string) {
		if len(rest) != n {
			usageErr("%s takes %s", verb, shape)
		}
	}
	c := daemon.Command{Cmd: verb}
	switch verb {
	case "status", "run", "pause", "quit", "watch":
		if verb == "watch" && len(rest) == 1 {
			n, err := strconv.ParseInt(rest[0], 10, 64)
			if err != nil || n < 1 {
				usageErr("watch count must be a positive integer, got %q", rest[0])
			}
			c.N = n
			break
		}
		want(0, "no arguments")
	case "step":
		if len(rest) == 1 {
			n, err := strconv.ParseInt(rest[0], 10, 64)
			if err != nil || n < 1 {
				usageErr("step count must be a positive integer, got %q", rest[0])
			}
			c.N = n
			break
		}
		want(0, "an optional count")
	case "run-until":
		want(1, "one duration (virtual time, e.g. 2s)")
		d, err := time.ParseDuration(rest[0])
		if err != nil || d <= 0 {
			usageErr("bad run-until target %q", rest[0])
		}
		c.TNs = d.Nanoseconds()
	case "add-tenant":
		if len(rest) != 2 && len(rest) != 3 {
			usageErr("add-tenant takes <name> <class> [rate]")
		}
		c.Name, c.Class = rest[0], rest[1]
		if len(rest) == 3 {
			rate, err := strconv.ParseFloat(rest[2], 64)
			if err != nil || rate <= 0 {
				usageErr("bad rate %q", rest[2])
			}
			c.Rate = rate
		}
	case "remove-tenant":
		want(1, "one tenant name")
		c.Name = rest[0]
	case "policy":
		want(1, "one policy name (none, freemarket, ioshares, fungible)")
		c.Name = rest[0]
	case "snapshot", "restore":
		want(1, "one file path")
		c.Path = rest[0]
	default:
		usageErr("unknown verb %q", verb)
	}
	return c
}

func printStatus(st *daemon.Status) {
	state := "running"
	if st.Paused {
		state = "paused"
	}
	fmt.Printf("t=%v  epoch=%d  policy=%s  %s", time.Duration(st.AtNs), st.Epoch, st.Policy, state)
	if st.UntilNs > 0 {
		fmt.Printf("  until=%v", time.Duration(st.UntilNs))
	}
	fmt.Printf("  log=%d\n", st.Log)
	for _, t := range st.Tenants {
		fmt.Printf("  tenant %s\n", t)
	}
	for _, m := range st.Market {
		fmt.Printf("  market host%d epoch=%d cpu=%.2f fabric=%.2f trades=%d\n",
			m.Host, m.Epoch, m.CPUPrice, m.FabricPrice, m.Trades)
	}
}

func main() {
	socket := flag.String("socket", "/tmp/resexd.sock", "daemon unix socket")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd := build(flag.Args())

	conn, err := daemon.Dial(*socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resexctl: cannot reach daemon at %s: %v\n", *socket, err)
		os.Exit(1)
	}
	defer conn.Close()

	if cmd.Cmd == "watch" {
		watch(conn, cmd.N)
		return
	}

	rep, err := daemon.Roundtrip(conn, cmd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resexctl:", err)
		os.Exit(1)
	}
	if !rep.OK {
		fmt.Fprintln(os.Stderr, "resexctl:", rep.Error)
		os.Exit(1)
	}
	if rep.Status != nil {
		printStatus(rep.Status)
		return
	}
	if rep.Msg != "" {
		fmt.Println(rep.Msg)
	}
}

// watch subscribes and prints raw telemetry lines — resextop -attach renders
// them as a table; resexctl keeps the JSON for scripting.
func watch(conn interface {
	Write([]byte) (int, error)
	Read([]byte) (int, error)
}, n int64) {
	wire, _ := json.Marshal(daemon.Command{Cmd: "watch"})
	if _, err := conn.Write(append(wire, '\n')); err != nil {
		fmt.Fprintln(os.Stderr, "resexctl:", err)
		os.Exit(1)
	}
	r := bufio.NewReader(conn)
	if _, err := daemon.ReadReply(r); err != nil {
		fmt.Fprintln(os.Stderr, "resexctl:", err)
		os.Exit(1)
	}
	var printed int64
	for n == 0 || printed < n {
		line, err := r.ReadBytes('\n')
		if err != nil {
			fmt.Fprintln(os.Stderr, "resexctl: stream closed:", err)
			os.Exit(1)
		}
		var tl daemon.TelemetryLine
		if err := json.Unmarshal(line, &tl); err != nil {
			continue // interleaved reply line, not a sample
		}
		os.Stdout.Write(line)
		printed++
	}
}
