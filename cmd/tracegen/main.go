// Command tracegen records, inspects and replays BenchEx workload logs —
// the stand-in for the exchange traces the paper's benchmark was built
// around.
//
// Usage:
//
//	tracegen -gen 10000 -seed 7 -out workload.trc    # record a workload
//	tracegen -info workload.trc                      # summarize a log
//	tracegen -replay workload.trc                    # run BenchEx over it
package main

import (
	"flag"
	"fmt"
	"os"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/sim"
	"resex/internal/trace"
)

func main() {
	var (
		gen    = flag.Int("gen", 0, "generate this many requests")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "workload.trc", "output file for -gen")
		info   = flag.String("info", "", "summarize a workload log")
		replay = flag.String("replay", "", "replay a workload log through BenchEx")
	)
	flag.Parse()

	switch {
	case *gen > 0:
		g := trace.NewGenerator(*seed, trace.GeneratorConfig{})
		reqs := trace.Record(g, *gen)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteLog(f, reqs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d requests (%d bytes) to %s\n", len(reqs), 16+len(reqs)*trace.RequestSize, *out)

	case *info != "":
		reqs := load(*info)
		counts := map[trace.RequestType]int{}
		symbols := map[uint32]bool{}
		for _, r := range reqs {
			counts[r.Type]++
			symbols[r.SymbolID] = true
		}
		fmt.Printf("%s: %d requests, %d symbols\n", *info, len(reqs), len(symbols))
		for _, t := range []trace.RequestType{trace.NewOrder, trace.CancelOrder, trace.QuoteRequest, trace.FeedRequest} {
			fmt.Printf("  %-10s %6d (%.1f%%)\n", t, counts[t], 100*float64(counts[t])/float64(len(reqs)))
		}

	case *replay != "":
		reqs := load(*replay)
		tb := cluster.New(cluster.Config{})
		hostA, hostB := tb.AddHost(1), tb.AddHost(2)
		app, err := tb.NewApp("replay", hostA, hostB,
			benchex.ServerConfig{BufferSize: 64 << 10},
			benchex.ClientConfig{
				BufferSize: 64 << 10,
				Requests:   len(reqs),
				Seed:       *seed,
				Source:     trace.NewReplay(reqs, false),
			})
		if err != nil {
			fatal(err)
		}
		app.Start()
		tb.Eng.RunUntil(sim.Time(len(reqs)+1000) * 300 * sim.Microsecond)
		cs := app.Client.Stats()
		fmt.Printf("replayed %d/%d requests: latency mean %.1fµs p99 %.1fµs over %v virtual time\n",
			cs.Received, len(reqs), cs.Latency.Mean(), cs.Sample.Quantile(0.99), tb.Eng.Now())
		tb.Eng.Shutdown()

	default:
		fmt.Fprintln(os.Stderr, "tracegen: need -gen N, -info FILE or -replay FILE")
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) []trace.Request {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	reqs, err := trace.ReadLog(f)
	if err != nil {
		fatal(err)
	}
	return reqs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
