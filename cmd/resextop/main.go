// Command resextop is a xentop-style monitor for the simulated platform:
// it runs the standard interference scenario and prints a per-VM table —
// CPU%, MTUs/s, charging rate, CPU cap, Reso balance — every reporting
// period of virtual time, straight from the ResEx manager's observer hook.
//
// Usage:
//
//	resextop                       # IOShares, 2s, 100ms refresh
//	resextop -policy freemarket -duration 3s -refresh 250ms
//	resextop -faults 4             # inject 4 fault storms/s; watch health
//	resextop -workload             # multi-tenant traffic engine instead
//	resextop -exchange             # fungible economy: rates + positions
//	resextop -attach /tmp/resexd.sock   # render a live resexd session
//
// Each refresh also shows the host's health (OK/degraded/blackout) and every
// VM's IBMon telemetry confidence, which matter once faults are injected.
// With -workload the rig is the traffic engine's mixed-class scenario (a
// closed-loop latency tenant against a bursty 2 MB bulk tenant) and every
// refresh adds per-tenant columns: offered load, inflight, p99 and SLO
// attainment over the refresh window. With -exchange the rig is a
// two-generation heterogeneous fleet under the Fungible policy, and each
// refresh prints every host's rate board (per-dimension prices, settlement
// epoch, trades) plus every holder's per-dimension book position. With
// -attach, resextop runs nothing itself: it subscribes to a running resexd
// daemon's telemetry stream and renders each sample with the same columns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resex/internal/daemon"
	"resex/internal/exchange"
	"resex/internal/experiments"
	"resex/internal/faults"
	"resex/internal/resex"
	"resex/internal/resos"
	"resex/internal/schedshard"
	"resex/internal/sim"
	"resex/internal/workload"
)

func main() {
	var (
		policyName = flag.String("policy", "ioshares", "pricing policy: freemarket, ioshares or fungible")
		duration   = flag.Duration("duration", 2*time.Second, "virtual run time")
		refresh    = flag.Duration("refresh", 100*time.Millisecond, "virtual time between table prints")
		storms     = flag.Float64("faults", 0, "fault storms per second to inject (0 = none)")
		seed       = flag.Int64("seed", 0, "fault schedule seed")
		useWL      = flag.Bool("workload", false, "drive the multi-tenant traffic engine instead of the benchex scenario")
		exchTop    = flag.Bool("exchange", false, "drive the fungible Reso economy on a heterogeneous two-host fleet and print per-host rates plus per-holder book positions")
		shardTop   = flag.Bool("shardsched", false, "drive the multi-shard placement scheduler on a synthetic fleet and print shard/conflict counters")
		shards     = flag.Int("shards", 4, "logical shard count for -shardsched")
		attach     = flag.String("attach", "", "render a running resexd daemon's telemetry stream from this unix socket")
		samples    = flag.Int("samples", 0, "with -attach: exit after this many samples (0 = stream forever)")
	)
	flag.Parse()

	if *attach != "" {
		runAttached(*attach, *samples)
		return
	}

	if *exchTop {
		if *storms > 0 || *useWL || *shardTop {
			fmt.Fprintln(os.Stderr, "resextop: -exchange does not combine with -faults, -workload or -shardsched")
			os.Exit(2)
		}
		runExchangeTop(*duration, *refresh, *seed)
		return
	}

	if *shardTop {
		if *storms > 0 || *useWL {
			fmt.Fprintln(os.Stderr, "resextop: -shardsched does not combine with -faults or -workload")
			os.Exit(2)
		}
		if *shards < 1 {
			fmt.Fprintf(os.Stderr, "resextop: -shards must be >= 1 (got %d)\n", *shards)
			os.Exit(2)
		}
		runShardTop(*shards, *seed, *duration, *refresh)
		return
	}

	mkPolicy := func() resex.Policy {
		switch strings.ToLower(*policyName) {
		case "freemarket", "fm":
			return resex.NewFreeMarket()
		case "fungible", "fun":
			return resex.NewFungible()
		case "ioshares", "ios":
			if *useWL {
				// Same tuning as the abl-workload experiments: open-loop
				// arrival jitter defeats the deviation trigger.
				p := resex.NewIOShares()
				p.UseDeviation = false
				p.WarmupIntervals = 100
				return p
			}
			return resex.NewIOShares()
		default:
			fmt.Fprintf(os.Stderr, "resextop: unknown policy %q\n", *policyName)
			os.Exit(2)
			return nil
		}
	}
	policy := mkPolicy()

	if *useWL {
		if *storms > 0 {
			fmt.Fprintln(os.Stderr, "resextop: -faults is only supported in scenario mode")
			os.Exit(2)
		}
		runWorkloadTop(mkPolicy, policy.Name(), *duration, *refresh, *seed)
		return
	}

	s, err := experiments.Build(experiments.ScenarioConfig{
		IntfBuffer: experiments.IntfBuffer,
		Policy:     policy,
		SLAUs:      experiments.BaseSLAUs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "resextop:", err)
		os.Exit(1)
	}

	runFor := sim.Time(duration.Nanoseconds())
	if *storms > 0 {
		h := s.TB.Host(1)
		inj := faults.NewInjector(s.TB.Eng)
		inj.AttachHost(faults.HostPorts{
			Node: h.Node, Uplink: h.Uplink, Downlink: h.Downlink,
			HCA: h.HCA, Mon: s.Mon,
		})
		inj.Arm(faults.Generate(*seed, faults.GenConfig{
			Hosts:        []int{h.Node},
			Start:        200 * sim.Millisecond,
			Horizon:      runFor,
			StormsPerSec: *storms,
		}))
	}

	period := sim.Time(refresh.Nanoseconds())
	interval := s.Mgr.Config().Interval
	every := int64(period / interval)
	if every < 1 {
		every = 1
	}

	fmt.Printf("resextop — policy %s, refresh %v (virtual)\n", policy.Name(), *refresh)
	type accum struct {
		mtus int64
		cpu  float64
		n    int64
	}
	acc := map[string]*accum{}
	s.Mgr.Observe(func(d *resex.IntervalData) {
		for i := range d.VMs {
			t := &d.VMs[i]
			a := acc[t.VM.Dom.Name()]
			if a == nil {
				a = &accum{}
				acc[t.VM.Dom.Name()] = a
			}
			a.mtus += t.MTUs
			a.cpu += t.CPUPct
			a.n++
		}
		if d.Index%every != 0 {
			return
		}
		fmt.Printf("\n[t=%v]  host1 health: %s\n", d.Now, s.Mon.Health())
		fmt.Printf("%-18s %7s %10s %7s %6s %12s %6s %8s\n",
			"VM", "CPU%", "MTUs/s", "rate", "cap%", "resos", "conf", "intf?")
		for i := range d.VMs {
			t := &d.VMs[i]
			a := acc[t.VM.Dom.Name()]
			capStr := "-"
			if c := t.VM.Dom.Cap(); c > 0 {
				capStr = fmt.Sprintf("%d", c)
			}
			intf := ""
			if t.VM.Interfered() {
				intf = "victim"
			} else if t.VM.Rate() > 1 {
				intf = "taxed"
			}
			perSec := float64(a.mtus) / (float64(a.n) * interval.Seconds())
			fmt.Printf("%-18s %7.1f %10.0f %7.2f %6s %12d %6.2f %8s\n",
				t.VM.Dom.Name(), a.cpu/float64(a.n), perSec,
				t.VM.Rate(), capStr, t.VM.Account.Balance(), t.Confidence, intf)
			*a = accum{}
		}
	})

	s.Start()
	s.TB.Eng.RunUntil(runFor)
	s.Shutdown()
}

// runWorkloadTop drives the traffic engine's mixed-class rig and prints the
// per-VM manager table plus per-tenant workload columns every refresh.
func runWorkloadTop(mkPolicy func() resex.Policy, policyName string, duration, refresh time.Duration, seed int64) {
	e := workload.New(workload.Config{Hosts: 1, ClientPCPUs: 8, Policy: mkPolicy})
	if _, err := e.AddTenant(workload.TenantSpec{
		Name:             "lat",
		Closed:           workload.ClosedLoop{Concurrency: 1},
		SLO:              workload.SLOSpec{P99Us: 1.5 * experiments.BaseSLAUs},
		SLAUs:            experiments.BaseSLAUs,
		LatencySensitive: true,
		Seed:             seed + 1,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "resextop:", err)
		os.Exit(1)
	}
	if _, err := e.AddTenant(workload.TenantSpec{
		Name:       "bulk",
		BufferSize: experiments.IntfBuffer,
		Arrivals: &workload.MMPP2{
			CalmRate: 150, BurstRate: 800,
			CalmDwell: 40 * sim.Millisecond, BurstDwell: 10 * sim.Millisecond,
		},
		Window:         16,
		ProcessTime:    2 * sim.Millisecond,
		PipelineServer: true,
		Seed:           seed + 999,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "resextop:", err)
		os.Exit(1)
	}

	mgr := e.Mgrs[0]
	interval := mgr.Config().Interval
	every := int64(sim.Time(refresh.Nanoseconds()) / interval)
	if every < 1 {
		every = 1
	}

	fmt.Printf("resextop — workload mode, policy %s, refresh %v (virtual)\n", policyName, refresh)
	mgr.Observe(func(d *resex.IntervalData) {
		if d.Index%every != 0 {
			return
		}
		fmt.Printf("\n[t=%v]\n", d.Now)
		fmt.Printf("%-18s %7s %7s %6s %8s\n", "VM", "CPU%", "rate", "cap%", "intf?")
		for i := range d.VMs {
			t := &d.VMs[i]
			capStr := "-"
			if c := t.VM.Dom.Cap(); c > 0 {
				capStr = fmt.Sprintf("%d", c)
			}
			intf := ""
			if t.VM.Interfered() {
				intf = "victim"
			} else if t.VM.Rate() > 1 {
				intf = "taxed"
			}
			fmt.Printf("%-18s %7.1f %7.2f %6s %8s\n",
				t.VM.Dom.Name(), t.CPUPct, t.VM.Rate(), capStr, intf)
		}
		fmt.Printf("%-10s %10s %11s %8s %7s %9s %7s\n",
			"tenant", "offered/s", "completed/s", "inflight", "queued", "p99(µs)", "SLO%")
		for _, tn := range e.Tenants() {
			st := tn.Stats()
			slo := "-"
			if tn.Spec.SLO.Constrained() {
				slo = fmt.Sprintf("%.1f", st.AttainPct)
			}
			fmt.Printf("%-10s %10.0f %11.0f %8d %7d %9.0f %7s\n",
				tn.Spec.Name, st.OfferedPerSec, st.CompletedPerSec,
				st.Inflight, st.Queued, st.P99, slo)
			// Reset so the next refresh shows that window, not the cumulative
			// run — top semantics.
			tn.ResetStats()
		}
	})

	e.Start()
	e.TB.Eng.RunUntil(sim.Time(duration.Nanoseconds()))
	e.Shutdown()
}

// runExchangeTop drives the fungible Reso economy on a two-generation
// heterogeneous fleet — the abl-fungible scenario's shape — and prints each
// host's rate board and every holder's book position every refresh period.
func runExchangeTop(duration, refresh time.Duration, seed int64) {
	bws := []float64{1e9, 500e6}
	next := 0
	e := workload.New(workload.Config{
		Hosts:          2,
		ClientPCPUs:    16,
		LinkBandwidths: bws,
		Policy: func() resex.Policy {
			p := resex.NewFungible()
			// Pin each board's utilization reference to its own link's MTUs
			// per 250 ms epoch, as the abl-fungible experiment does.
			p.Exchange.Capacity[exchange.DimFabric] = resos.Amount(bws[next] * 0.25 / 1024)
			next++
			return p
		},
	})
	for i, bw := range bws {
		gen := bws[0] / bw
		if _, err := e.AddTenant(workload.TenantSpec{
			Name:             fmt.Sprintf("lat%d", i),
			Closed:           workload.ClosedLoop{Concurrency: 1},
			SLO:              workload.SLOSpec{P99Us: 1.5 * gen * experiments.BaseSLAUs},
			SLAUs:            gen * experiments.BaseSLAUs,
			LatencySensitive: true,
			Share:            3,
			Seed:             seed + int64(i) + 1,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "resextop:", err)
			os.Exit(1)
		}
	}
	for i, bw := range bws {
		// Offer ~90% of each host's link as 4× bursts.
		mean := 0.9 * bw / float64(experiments.IntfBuffer)
		calm := mean / 1.75
		if _, err := e.AddTenant(workload.TenantSpec{
			Name:       fmt.Sprintf("bulk%d", i),
			BufferSize: experiments.IntfBuffer,
			Arrivals: &workload.MMPP2{
				CalmRate: calm, BurstRate: 4 * calm,
				CalmDwell: 30 * sim.Millisecond, BurstDwell: 10 * sim.Millisecond,
			},
			Window:         16,
			ProcessTime:    2 * sim.Millisecond,
			PipelineServer: true,
			Seed:           seed + 100 + int64(i),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "resextop:", err)
			os.Exit(1)
		}
	}

	period := sim.Time(refresh.Nanoseconds())
	if period <= 0 {
		period = 100 * sim.Millisecond
	}
	fmt.Printf("resextop — exchange mode, policy Fungible, refresh %v (virtual)\n", refresh)
	e.TB.Eng.Every(period, func() {
		fmt.Printf("\n[t=%v]\n", e.TB.Eng.Now())
		for hi, m := range e.Mgrs {
			keeper, ok := m.Policy().(exchange.BookKeeper)
			if !ok {
				continue
			}
			bk := keeper.Book()
			board := bk.Board()
			fmt.Printf("host%d  epoch %-4d trades %-4d price cpu %.2f fabric %.2f membw %.2f  rate fabric/cpu %.2f\n",
				hi, bk.Epoch(), bk.TradeCount(),
				board.Price(exchange.DimCPU), board.Price(exchange.DimFabric),
				board.Price(exchange.DimMemBW),
				board.Rate(exchange.DimFabric, exchange.DimCPU))
			fmt.Printf("  %-18s %9s %9s %9s %9s %8s %8s %7s %6s\n",
				"holder", "cpu-ent", "cpu-spent", "fab-ent", "fab-spent", "fab-buy", "fab-sell", "rate", "cap%")
			for _, h := range bk.Holders() {
				var rate float64 = 1
				capStr := "-"
				for _, vm := range m.VMs() {
					if vm.Dom.Name() == h.Name() {
						rate = vm.Rate()
						if c := vm.Dom.Cap(); c > 0 {
							capStr = fmt.Sprintf("%d", c)
						}
						break
					}
				}
				fmt.Printf("  %-18s %9d %9d %9d %9d %8d %8d %7.2f %6s\n",
					h.Name(),
					h.Entitlement(exchange.DimCPU), h.Spent(exchange.DimCPU),
					h.Entitlement(exchange.DimFabric), h.Spent(exchange.DimFabric),
					h.Bought(exchange.DimFabric), h.Sold(exchange.DimFabric),
					rate, capStr)
			}
		}
	})

	e.Start()
	e.TB.Eng.RunUntil(sim.Time(duration.Nanoseconds()))
	e.Shutdown()
}

// runAttached subscribes to a resexd daemon's telemetry stream and renders
// each sample as a table: the daemon owns the simulation and its pacing;
// resextop here is a pure viewer.
func runAttached(socket string, samples int) {
	conn, err := daemon.Dial(socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resextop: cannot reach daemon at %s: %v\n", socket, err)
		os.Exit(1)
	}
	defer conn.Close()
	wire, _ := json.Marshal(daemon.Command{Cmd: "watch"})
	if _, err := conn.Write(append(wire, '\n')); err != nil {
		fmt.Fprintln(os.Stderr, "resextop:", err)
		os.Exit(1)
	}
	r := bufio.NewReader(conn)
	if rep, err := daemon.ReadReply(r); err != nil || !rep.OK {
		fmt.Fprintf(os.Stderr, "resextop: watch refused: %v %s\n", err, rep.Error)
		os.Exit(1)
	}

	fmt.Printf("resextop — attached to %s\n", socket)
	seen := 0
	for samples == 0 || seen < samples {
		line, err := r.ReadBytes('\n')
		if err != nil {
			fmt.Fprintln(os.Stderr, "resextop: daemon stream closed:", err)
			os.Exit(1)
		}
		var tl daemon.TelemetryLine
		if err := json.Unmarshal(line, &tl); err != nil || tl.Telemetry.Epoch == 0 && tl.Telemetry.AtNs == 0 && tl.Telemetry.Policy == "" {
			continue // a command reply interleaved on this connection
		}
		render(tl.Telemetry)
		seen++
	}
}

// render prints one daemon telemetry sample with resextop's columns.
func render(t daemon.Telemetry) {
	state := ""
	if t.Paused {
		state = "  [paused]"
	}
	fmt.Printf("\n[t=%v  epoch %d  policy %s]%s\n",
		time.Duration(t.AtNs), t.Epoch, t.Policy, state)
	fmt.Printf("%-18s %7s %6s %12s %7s %6s %8s\n",
		"VM", "rate", "cap%", "resos", "MTU/s", "conf", "intf?")
	for _, vm := range t.VMs {
		capStr := "-"
		if vm.CapPct > 0 {
			capStr = fmt.Sprintf("%d", vm.CapPct)
		}
		intf := ""
		if vm.Interfered {
			intf = "victim"
		} else if vm.Rate > 1 {
			intf = "taxed"
		}
		fmt.Printf("%-18s %7.2f %6s %12d %7.0f %6.2f %8s\n",
			vm.Name, vm.Rate, capStr, vm.Resos, vm.MTURate, vm.Confidence, intf)
	}
	fmt.Printf("%-10s %10s %11s %8s %7s %9s %7s\n",
		"tenant", "offered/s", "completed/s", "inflight", "queued", "p99(µs)", "SLO%")
	for _, tn := range t.Tenants {
		name := tn.Name
		if !tn.Running {
			name += "*" // stopped
		}
		slo := "-"
		if tn.AttainPct > 0 {
			slo = fmt.Sprintf("%.1f", tn.AttainPct)
		}
		fmt.Printf("%-10s %10.0f %11.0f %8d %7d %9.0f %7s\n",
			name, tn.OfferedPerSec, tn.CompletedPerSec,
			tn.Inflight, tn.Queued, tn.P99, slo)
	}
}

// runShardTop drives the schedshard scheduler over a synthetic 128-host
// fleet: every refresh period one arrival wave is enqueued and one
// propose→merge→commit round runs, and the round's conflict accounting is
// printed as it happens. The final table breaks the lifetime counters down
// per logical shard.
func runShardTop(shards int, seed int64, duration, refresh time.Duration) {
	const hosts = 128
	vms := 25 * hosts

	eng := sim.New()
	store := schedshard.NewStore()
	fleet := make([]*schedshard.HostInfo, hosts)
	for i := range fleet {
		fleet[i] = &schedshard.HostInfo{
			Node: i + 1, FreePCPUs: 31, TotalPCPUs: 31,
			LinkBytesPerSec: 1e9, ResoHeadroom: 1,
		}
	}
	store.Publish(fleet)
	sched := schedshard.NewScheduler(store, schedshard.Config{
		Shards: shards, Workers: shards, Seed: seed, AvoidConflicts: true,
	})

	runFor := sim.Time(duration.Nanoseconds())
	period := sim.Time(refresh.Nanoseconds())
	if period <= 0 {
		period = 100 * sim.Millisecond
	}
	ticks := int(runFor / period)
	if ticks < 1 {
		ticks = 1
	}
	perWave := (vms + ticks - 1) / ticks
	rng := sim.NewRand(seed)
	next := 0

	fmt.Printf("schedshard: %d hosts, %d VMs, %d logical shards (conflict avoidance on)\n\n", hosts, vms, shards)
	fmt.Printf("%10s %6s %9s %9s %10s %8s %8s %9s\n",
		"time", "round", "proposed", "committed", "conflicted", "starved", "pending", "store-ver")
	eng.Every(period, func() {
		for i := 0; i < perWave && next < vms; i++ {
			var spec schedshard.Spec
			var vm schedshard.VMInfo
			if rng.Intn(4) == 0 {
				spec = schedshard.Spec{Name: fmt.Sprintf("bulk%d", next), BufferSize: 2 << 20}
				vm = schedshard.VMInfo{Spec: spec, BytesPerSec: 60e6, BufferSize: 2 << 20}
			} else {
				spec = schedshard.Spec{Name: fmt.Sprintf("ls%d", next), LatencySensitive: true, BufferSize: 64 << 10}
				vm = schedshard.VMInfo{Spec: spec, BytesPerSec: 2e6, BufferSize: 64 << 10}
			}
			sched.Enqueue(spec, vm)
			next++
		}
		rs := sched.Round()
		fmt.Printf("%10v %6d %9d %9d %10d %8d %8d %9d\n",
			eng.Now(), rs.Round, rs.Proposed, rs.Committed, rs.Conflicted,
			rs.Starved, rs.Pending, store.Version())
	})
	eng.RunUntil(runFor)
	eng.Shutdown()

	fmt.Printf("\nper-shard lifetime counters:\n%6s %9s %9s %10s %8s\n",
		"shard", "proposed", "committed", "conflicted", "starved")
	for _, sc := range sched.Shards() {
		fmt.Printf("%6d %9d %9d %10d %8d\n",
			sc.Shard, sc.Proposed, sc.Committed, sc.Conflicted, sc.Starved)
	}
	fmt.Printf("\ntotal: %d bound, %d failed, %d conflicts, %d retries, bind-fnv %016x\n",
		len(sched.Bound()), len(sched.Failed()), sched.Conflicts(), sched.Retries(), sched.BindFNV())
}
