// Command resextop is a xentop-style monitor for the simulated platform:
// it runs the standard interference scenario and prints a per-VM table —
// CPU%, MTUs/s, charging rate, CPU cap, Reso balance — every reporting
// period of virtual time, straight from the ResEx manager's observer hook.
//
// Usage:
//
//	resextop                       # IOShares, 2s, 100ms refresh
//	resextop -policy freemarket -duration 3s -refresh 250ms
//	resextop -faults 4             # inject 4 fault storms/s; watch health
//
// Each refresh also shows the host's health (OK/degraded/blackout) and every
// VM's IBMon telemetry confidence, which matter once faults are injected.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resex/internal/experiments"
	"resex/internal/faults"
	"resex/internal/resex"
	"resex/internal/sim"
)

func main() {
	var (
		policyName = flag.String("policy", "ioshares", "pricing policy: freemarket or ioshares")
		duration   = flag.Duration("duration", 2*time.Second, "virtual run time")
		refresh    = flag.Duration("refresh", 100*time.Millisecond, "virtual time between table prints")
		storms     = flag.Float64("faults", 0, "fault storms per second to inject (0 = none)")
		seed       = flag.Int64("seed", 0, "fault schedule seed")
	)
	flag.Parse()

	var policy resex.Policy
	switch strings.ToLower(*policyName) {
	case "freemarket", "fm":
		policy = resex.NewFreeMarket()
	case "ioshares", "ios":
		policy = resex.NewIOShares()
	default:
		fmt.Fprintf(os.Stderr, "resextop: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	s, err := experiments.Build(experiments.ScenarioConfig{
		IntfBuffer: experiments.IntfBuffer,
		Policy:     policy,
		SLAUs:      experiments.BaseSLAUs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "resextop:", err)
		os.Exit(1)
	}

	runFor := sim.Time(duration.Nanoseconds())
	if *storms > 0 {
		h := s.TB.Host(1)
		inj := faults.NewInjector(s.TB.Eng)
		inj.AttachHost(faults.HostPorts{
			Node: h.Node, Uplink: h.Uplink, Downlink: h.Downlink,
			HCA: h.HCA, Mon: s.Mon,
		})
		inj.Arm(faults.Generate(*seed, faults.GenConfig{
			Hosts:        []int{h.Node},
			Start:        200 * sim.Millisecond,
			Horizon:      runFor,
			StormsPerSec: *storms,
		}))
	}

	period := sim.Time(refresh.Nanoseconds())
	interval := s.Mgr.Config().Interval
	every := int64(period / interval)
	if every < 1 {
		every = 1
	}

	fmt.Printf("resextop — policy %s, refresh %v (virtual)\n", policy.Name(), *refresh)
	type accum struct {
		mtus int64
		cpu  float64
		n    int64
	}
	acc := map[string]*accum{}
	s.Mgr.Observe(func(d *resex.IntervalData) {
		for i := range d.VMs {
			t := &d.VMs[i]
			a := acc[t.VM.Dom.Name()]
			if a == nil {
				a = &accum{}
				acc[t.VM.Dom.Name()] = a
			}
			a.mtus += t.MTUs
			a.cpu += t.CPUPct
			a.n++
		}
		if d.Index%every != 0 {
			return
		}
		fmt.Printf("\n[t=%v]  host1 health: %s\n", d.Now, s.Mon.Health())
		fmt.Printf("%-18s %7s %10s %7s %6s %12s %6s %8s\n",
			"VM", "CPU%", "MTUs/s", "rate", "cap%", "resos", "conf", "intf?")
		for i := range d.VMs {
			t := &d.VMs[i]
			a := acc[t.VM.Dom.Name()]
			capStr := "-"
			if c := t.VM.Dom.Cap(); c > 0 {
				capStr = fmt.Sprintf("%d", c)
			}
			intf := ""
			if t.VM.Interfered() {
				intf = "victim"
			} else if t.VM.Rate() > 1 {
				intf = "taxed"
			}
			perSec := float64(a.mtus) / (float64(a.n) * interval.Seconds())
			fmt.Printf("%-18s %7.1f %10.0f %7.2f %6s %12d %6.2f %8s\n",
				t.VM.Dom.Name(), a.cpu/float64(a.n), perSec,
				t.VM.Rate(), capStr, t.VM.Account.Balance(), t.Confidence, intf)
			*a = accum{}
		}
	})

	s.Start()
	s.TB.Eng.RunUntil(runFor)
	s.Shutdown()
}
