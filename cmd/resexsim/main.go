// Command resexsim reproduces the paper's evaluation figures.
//
// Usage:
//
//	resexsim -fig fig7                 # one figure, text output
//	resexsim -all                      # every figure
//	resexsim -fig fig9 -csv            # CSV to stdout
//	resexsim -fig fig5 -duration 10s   # longer measured window
//	resexsim -list                     # available figures
//
// Checkpoint/restore:
//
//	resexsim -fig fig7 -snapshot run.snap -snapshot-at 1s
//	resexsim -restore run.snap
//
// The first form runs the figure normally (its output is byte-identical to
// a run without -snapshot) and additionally captures every engine's full
// state at the given virtual time into run.snap. The second rebuilds the
// run from the snapshot's recorded inputs, replays it to the capture point
// under byte-for-byte state verification, and runs to the end: stdout is
// byte-identical to the uninterrupted run, and any state divergence at the
// capture point is a hard error.
//
// The -duration flag trades fidelity for wall time; the defaults give
// stable shapes in a few seconds per figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"resex/internal/experiments"
	"resex/internal/invariant"
	"resex/internal/report"
	"resex/internal/sim"
	"resex/internal/snapshot"
)

// listExperiments writes every registered experiment, sorted by id and
// aligned to the longest one — the single source for -list and for the
// unknown-experiment usage message.
func listExperiments(w io.Writer, indent string) {
	ids := experiments.IDs()
	width := 0
	for _, id := range ids {
		if len(id) > width {
			width = len(id)
		}
	}
	for _, id := range ids {
		e, _ := experiments.Lookup(id)
		fmt.Fprintf(w, "%s%-*s %s\n", indent, width, e.ID, e.Title)
	}
}

// usageErr prints a one-line complaint plus the flag usage and exits 2, the
// conventional bad-invocation status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "resexsim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// progress tracks the run for the signal handler's partial summary: which
// experiments finished and which one a SIGINT/SIGTERM caught in flight.
type progress struct {
	mu        sync.Mutex
	total     int
	completed []string
	current   string
}

func (p *progress) start(id string) {
	p.mu.Lock()
	p.current = id
	p.mu.Unlock()
}

func (p *progress) done(id string) {
	p.mu.Lock()
	p.completed = append(p.completed, id)
	p.current = ""
	p.mu.Unlock()
}

// interrupt flushes the partial summary and exits with the conventional
// 128+signal status. Results already printed stay on stdout; the summary
// goes to stderr so interrupted and complete runs never mix streams.
func (p *progress) interrupt(sig os.Signal) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(os.Stderr, "resexsim: caught %v; completed %d/%d experiments",
		sig, len(p.completed), p.total)
	if len(p.completed) > 0 {
		fmt.Fprintf(os.Stderr, " (%s)", strings.Join(p.completed, ", "))
	}
	if p.current != "" {
		fmt.Fprintf(os.Stderr, "; %s was in flight and is discarded", p.current)
	}
	fmt.Fprintln(os.Stderr)
	code := 130 // SIGINT
	if sig == syscall.SIGTERM {
		code = 143
	}
	os.Exit(code)
}

func main() {
	var (
		fig        = flag.String("fig", "", "figure to reproduce (fig1..fig9)")
		all        = flag.Bool("all", false, "reproduce every figure")
		list       = flag.Bool("list", false, "list available figures")
		csv        = flag.Bool("csv", false, "emit CSV instead of text")
		jsonOut    = flag.Bool("json", false, "emit result structs as JSON")
		svgDir     = flag.String("svg", "", "also write <dir>/<fig>.svg charts")
		duration   = flag.Duration("duration", 2*time.Second, "measured virtual time per run")
		warmup     = flag.Duration("warmup", 100*time.Millisecond, "virtual warmup before measuring")
		seed       = flag.Int64("seed", 0, "workload seed offset (same seed = byte-identical output)")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for a figure's independent sweep points (output is byte-identical at any value)")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "worker goroutines per schedshard placement round (output is byte-identical at any value; the logical shard count is the experiment's sweep axis)")
		simShards  = flag.Int("simshards", 1, "worker goroutines per sharded-simulation window (abl-simpar; output is byte-identical at any value)")
		audit      = flag.Bool("audit", false, "run the invariant auditor alongside every figure and print its summary (deterministic; cannot change figure output)")
		snapFile   = flag.String("snapshot", "", "capture every engine's state into this file (requires a single -fig)")
		snapAt     = flag.Duration("snapshot-at", 0, "virtual capture time for -snapshot, measured from engine start (default warmup + duration/2)")
		restoreArg = flag.String("restore", "", "restore from a snapshot file: rebuild, replay under state verification, run to the end (exclusive with -fig/-all)")
	)
	flag.Parse()

	if *list {
		listExperiments(os.Stdout, "")
		return
	}

	// Validate the numeric flags before any simulation work: a bad width or
	// window must die with usage, not misbehave minutes in.
	if *parallel < 1 {
		usageErr("-parallel must be >= 1 (got %d)", *parallel)
	}
	if *shards < 1 {
		usageErr("-shards must be >= 1 (got %d)", *shards)
	}
	if *simShards < 1 {
		usageErr("-simshards must be >= 1 (got %d)", *simShards)
	}
	if *simShards > runtime.GOMAXPROCS(0) {
		// Warn, don't refuse: extra window workers beyond the CPUs (or the
		// fleet's host count, whichever is hit first — the coordinator
		// clamps workers to its shard count) add scheduling overhead, not
		// speed. Output is unaffected either way.
		fmt.Fprintf(os.Stderr, "resexsim: warning: -simshards %d exceeds %d available CPUs; extra workers add overhead, not speed\n",
			*simShards, runtime.GOMAXPROCS(0))
	}
	if *duration <= 0 {
		usageErr("-duration must be positive (got %v)", *duration)
	}
	if *warmup < 0 {
		usageErr("-warmup must not be negative (got %v)", *warmup)
	}
	if *snapAt < 0 {
		usageErr("-snapshot-at must not be negative (got %v)", *snapAt)
	}

	var plan *snapshot.Plan
	var bundle *snapshot.Bundle
	var ids []string
	switch {
	case *restoreArg != "":
		if *fig != "" || *all || *snapFile != "" {
			usageErr("-restore replays the snapshot's own run; it cannot combine with -fig, -all or -snapshot")
		}
		var err error
		bundle, err = snapshot.ReadFile(*restoreArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resexsim:", err)
			os.Exit(1)
		}
		if bundle.Meta.Kind != "experiment" {
			fmt.Fprintf(os.Stderr, "resexsim: %s holds a %q snapshot, not an experiment (use resexctl restore)\n",
				*restoreArg, bundle.Meta.Kind)
			os.Exit(1)
		}
		// The run is a pure function of its recorded inputs: id, seed,
		// windows and audit mode all come from the file, not from flags.
		ids = []string{bundle.Meta.Experiment}
		*seed = bundle.Meta.Seed
		*duration = time.Duration(bundle.Meta.DurationNs)
		*warmup = time.Duration(bundle.Meta.WarmupNs)
		*audit = bundle.Meta.Audit
		plan = snapshot.NewVerify(bundle)
	case *all:
		if *snapFile != "" {
			usageErr("-snapshot records a single experiment's run; use -fig, not -all")
		}
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{*fig}
	default:
		fmt.Fprintln(os.Stderr, "resexsim: need -fig <id>, -all, -list or -restore <file>")
		flag.Usage()
		os.Exit(2)
	}

	if *snapFile != "" {
		at := sim.Time(snapAt.Nanoseconds())
		if at == 0 {
			at = sim.Time(warmup.Nanoseconds()) + sim.Time(duration.Nanoseconds())/2
		}
		plan = snapshot.NewCapture(at)
	}

	// Validate every id up front: an unknown experiment must fail fast with
	// the valid names, not after earlier runs burned minutes of sim time.
	for _, id := range ids {
		if _, err := experiments.Lookup(id); err != nil {
			fmt.Fprintf(os.Stderr, "resexsim: unknown experiment %q\n\nvalid experiments:\n", id)
			listExperiments(os.Stderr, "  ")
			os.Exit(2)
		}
	}

	prog := &progress{total: len(ids)}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		prog.interrupt(<-sigCh)
	}()

	opts := experiments.Options{
		Duration:     sim.Time(duration.Nanoseconds()),
		Warmup:       sim.Time(warmup.Nanoseconds()),
		Seed:         *seed,
		Parallel:     *parallel,
		ShardWorkers: *shards,
		SimShards:    *simShards,
		Checkpoint:   plan,
	}
	var index []report.IndexEntry
	for _, id := range ids {
		e, _ := experiments.Lookup(id)
		start := time.Now()
		prog.start(id)
		runOpts := opts
		var col *invariant.Collector
		if *audit {
			col = invariant.NewCollector(invariant.Audit)
			runOpts.Audit = col
		}
		res, err := e.Run(runOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resexsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "resexsim:", err)
				os.Exit(1)
			}
			svg, err := report.RenderSVG(res)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resexsim:", err)
				os.Exit(1)
			}
			path := filepath.Join(*svgDir, id+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "resexsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			var txt strings.Builder
			_ = res.WriteText(&txt)
			index = append(index, report.IndexEntry{
				ID: id, Title: e.Title, SVGFile: id + ".svg", Text: txt.String(),
			})
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{"id": id, "title": e.Title, "result": res}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if *csv {
			if err := res.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			if err := res.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// Stderr, so two same-seed runs stay byte-identical on stdout.
			fmt.Fprintf(os.Stderr, "[%s completed in %v wall time]\n", id, time.Since(start).Round(time.Millisecond))
		}
		if col != nil {
			// Deterministic, so it belongs on stdout in text mode (the
			// determinism gates diff it too); stderr keeps CSV/JSON clean.
			auditOut := os.Stdout
			if *jsonOut || *csv {
				auditOut = os.Stderr
			}
			if err := col.WriteText(auditOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		prog.done(id)
	}
	switch {
	case *snapFile != "":
		b, err := plan.Bundle(snapshot.Meta{
			Kind:       "experiment",
			Experiment: ids[0],
			Seed:       *seed,
			DurationNs: duration.Nanoseconds(),
			WarmupNs:   warmup.Nanoseconds(),
			Audit:      *audit,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "resexsim:", err)
			os.Exit(1)
		}
		if err := snapshot.WriteFile(*snapFile, b); err != nil {
			fmt.Fprintln(os.Stderr, "resexsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d engine snapshots at T=%v)\n",
			*snapFile, len(b.Snaps), sim.Time(b.Meta.SnapshotAtNs))
	case *restoreArg != "":
		if err := plan.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "resexsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "restore verified: replayed state matches %s at T=%v\n",
			*restoreArg, sim.Time(bundle.Meta.SnapshotAtNs))
	}
	if *svgDir != "" && len(index) > 0 {
		page := report.HTMLIndex("ResEx reproduction — figures and ablations", index)
		path := filepath.Join(*svgDir, "index.html")
		if err := os.WriteFile(path, []byte(page), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "resexsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	signal.Stop(sigCh)
}
