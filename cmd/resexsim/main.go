// Command resexsim reproduces the paper's evaluation figures.
//
// Usage:
//
//	resexsim -fig fig7                 # one figure, text output
//	resexsim -all                      # every figure
//	resexsim -fig fig9 -csv            # CSV to stdout
//	resexsim -fig fig5 -duration 10s   # longer measured window
//	resexsim -list                     # available figures
//
// The -duration flag trades fidelity for wall time; the defaults give
// stable shapes in a few seconds per figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"resex/internal/experiments"
	"resex/internal/invariant"
	"resex/internal/report"
	"resex/internal/sim"
)

// listExperiments writes every registered experiment, sorted by id and
// aligned to the longest one — the single source for -list and for the
// unknown-experiment usage message.
func listExperiments(w io.Writer, indent string) {
	ids := experiments.IDs()
	width := 0
	for _, id := range ids {
		if len(id) > width {
			width = len(id)
		}
	}
	for _, id := range ids {
		e, _ := experiments.Lookup(id)
		fmt.Fprintf(w, "%s%-*s %s\n", indent, width, e.ID, e.Title)
	}
}

func main() {
	var (
		fig      = flag.String("fig", "", "figure to reproduce (fig1..fig9)")
		all      = flag.Bool("all", false, "reproduce every figure")
		list     = flag.Bool("list", false, "list available figures")
		csv      = flag.Bool("csv", false, "emit CSV instead of text")
		jsonOut  = flag.Bool("json", false, "emit result structs as JSON")
		svgDir   = flag.String("svg", "", "also write <dir>/<fig>.svg charts")
		duration = flag.Duration("duration", 2*time.Second, "measured virtual time per run")
		warmup   = flag.Duration("warmup", 100*time.Millisecond, "virtual warmup before measuring")
		seed     = flag.Int64("seed", 0, "workload seed offset (same seed = byte-identical output)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for a figure's independent sweep points (output is byte-identical at any value)")
		audit    = flag.Bool("audit", false, "run the invariant auditor alongside every figure and print its summary (deterministic; cannot change figure output)")
	)
	flag.Parse()

	if *list {
		listExperiments(os.Stdout, "")
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{*fig}
	default:
		fmt.Fprintln(os.Stderr, "resexsim: need -fig <id>, -all or -list")
		flag.Usage()
		os.Exit(2)
	}

	// Validate every id up front: an unknown experiment must fail fast with
	// the valid names, not after earlier runs burned minutes of sim time.
	for _, id := range ids {
		if _, err := experiments.Lookup(id); err != nil {
			fmt.Fprintf(os.Stderr, "resexsim: unknown experiment %q\n\nvalid experiments:\n", id)
			listExperiments(os.Stderr, "  ")
			os.Exit(2)
		}
	}

	opts := experiments.Options{
		Duration: sim.Time(duration.Nanoseconds()),
		Warmup:   sim.Time(warmup.Nanoseconds()),
		Seed:     *seed,
		Parallel: *parallel,
	}
	var index []report.IndexEntry
	for _, id := range ids {
		e, _ := experiments.Lookup(id)
		start := time.Now()
		runOpts := opts
		var col *invariant.Collector
		if *audit {
			col = invariant.NewCollector(invariant.Audit)
			runOpts.Audit = col
		}
		res, err := e.Run(runOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resexsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "resexsim:", err)
				os.Exit(1)
			}
			svg, err := report.RenderSVG(res)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resexsim:", err)
				os.Exit(1)
			}
			path := filepath.Join(*svgDir, id+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "resexsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			var txt strings.Builder
			_ = res.WriteText(&txt)
			index = append(index, report.IndexEntry{
				ID: id, Title: e.Title, SVGFile: id + ".svg", Text: txt.String(),
			})
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{"id": id, "title": e.Title, "result": res}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if *csv {
			if err := res.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			if err := res.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// Stderr, so two same-seed runs stay byte-identical on stdout.
			fmt.Fprintf(os.Stderr, "[%s completed in %v wall time]\n", id, time.Since(start).Round(time.Millisecond))
		}
		if col != nil {
			// Deterministic, so it belongs on stdout in text mode (the
			// determinism gates diff it too); stderr keeps CSV/JSON clean.
			auditOut := os.Stdout
			if *jsonOut || *csv {
				auditOut = os.Stderr
			}
			if err := col.WriteText(auditOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *svgDir != "" && len(index) > 0 {
		page := report.HTMLIndex("ResEx reproduction — figures and ablations", index)
		path := filepath.Join(*svgDir, "index.html")
		if err := os.WriteFile(path, []byte(page), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "resexsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}
