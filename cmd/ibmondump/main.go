// Command ibmondump demonstrates the IBMon introspection path: it runs a
// BenchEx workload, watches the server VM's completion queue from dom0
// purely through guest-memory introspection, and prints the per-interval
// I/O estimates next to the device's ground truth so the estimation error
// is visible.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"resex/internal/benchex"
	"resex/internal/cluster"
	"resex/internal/ibmon"
	"resex/internal/sim"
)

func main() {
	var (
		duration = flag.Duration("duration", 500*time.Millisecond, "virtual run time")
		period   = flag.Duration("period", 250*time.Microsecond, "IBMon sampling period")
		interval = flag.Duration("interval", 50*time.Millisecond, "print interval")
	)
	flag.Parse()

	tb := cluster.New(cluster.Config{})
	hostA, hostB := tb.AddHost(1), tb.AddHost(2)
	app, err := tb.NewApp("app", hostA, hostB,
		benchex.ServerConfig{BufferSize: 64 << 10},
		benchex.ClientConfig{BufferSize: 64 << 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibmondump:", err)
		os.Exit(1)
	}

	dom0 := hostA.Dom0VCPU()
	mon := ibmon.New(hostA.HV, dom0, ibmon.Config{Period: sim.Time(period.Nanoseconds())})
	tgt, err := mon.WatchCQ(app.ServerVM.Dom.ID(), app.Server.SendCQ())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibmondump:", err)
		os.Exit(1)
	}

	fmt.Printf("Watching domain %d (%s) via introspection of CQ ring @%#x, dbrec @%#x\n\n",
		app.ServerVM.Dom.ID(), app.ServerVM.Dom.Name(),
		uint64(app.Server.SendCQ().RingAddr()), uint64(app.Server.SendCQ().DBRecAddr()))
	fmt.Printf("%-10s %12s %12s %12s %10s %8s %8s\n",
		"time", "mtus-sent", "bytes-sent", "truth-bytes", "err%", "bufsize", "lost")

	var lastMTUs, lastBytes int64
	var lastTruth int64
	tb.Eng.Every(sim.Time(interval.Nanoseconds()), func() {
		u := tgt.Usage()
		truth := hostA.HCA.BytesSent()
		dm, db := u.MTUsSent-lastMTUs, u.BytesSent-lastBytes
		dt := truth - lastTruth
		lastMTUs, lastBytes, lastTruth = u.MTUsSent, u.BytesSent, truth
		errPct := 0.0
		if dt > 0 {
			errPct = 100 * float64(db-dt) / float64(dt)
		}
		fmt.Printf("%-10v %12d %12d %12d %9.2f%% %8d %8d\n",
			tb.Eng.Now(), dm, db, dt, errPct, u.BufferSize, u.Lost)
	})

	app.Start()
	mon.Start(tb.Eng)
	tb.Eng.RunUntil(sim.Time(duration.Nanoseconds()))
	mon.Stop()

	u := tgt.Usage()
	fmt.Printf("\nTotals: %d completions (%d lost), %d MTUs, %d bytes sent; inferred QPN %d, buffer %d bytes\n",
		u.Completions, u.Lost, u.MTUsSent, u.BytesSent, u.QPN, u.BufferSize)
	fmt.Printf("Device truth: %d messages, %d bytes\n", hostA.HCA.MessagesSent(), hostA.HCA.BytesSent())
	fmt.Printf("dom0 CPU consumed by monitoring: %v\n", hostA.HV.Dom0().CPUTime())
	tb.Eng.Shutdown()
}
