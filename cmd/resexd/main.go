// Command resexd is the long-running control-plane daemon: it hosts a
// multi-tenant simulated cluster advanced in fixed quanta of virtual time
// and exposes it over a unix socket for live control and observation.
//
// Usage:
//
//	resexd -socket /tmp/resexd.sock
//	resexd -policy fungible -tenant lat:latency -tenant bulk:bulk
//	resexd -restore run.snap           # resume a snapshotted session
//	resexd -log commands.jsonl         # durable command log
//
// Clients: resexctl sends commands (status, pause/run/step, add-tenant,
// remove-tenant, policy, snapshot, restore, quit); resextop -attach renders
// the telemetry stream as a live table. Commands apply only at quantum
// boundaries and state commands are stamped into a replayable log, so a
// live-driven session remains a reproducible artifact: snapshot it, restore
// it elsewhere, and the replay is verified byte-for-byte (internal/daemon,
// internal/snapshot).
//
// The daemon starts paused; `resexctl run` (or step/run-until) sets virtual
// time moving. SIGINT/SIGTERM shut it down cleanly.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"resex/internal/daemon"
	"resex/internal/snapshot"
)

// tenantFlags collects repeated -tenant name:class[:rate] specs.
type tenantFlags []daemon.TenantConfig

func (t *tenantFlags) String() string { return fmt.Sprint(*t) }

func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
		return fmt.Errorf("want name:class[:rate], got %q", v)
	}
	tc := daemon.TenantConfig{Name: parts[0], Class: parts[1]}
	if len(parts) == 3 {
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rate <= 0 {
			return fmt.Errorf("bad rate in %q", v)
		}
		tc.Rate = rate
	}
	*t = append(*t, tc)
	return nil
}

func main() {
	var tenants tenantFlags
	var (
		socket    = flag.String("socket", "/tmp/resexd.sock", "unix socket to listen on")
		seed      = flag.Int64("seed", 0, "session seed (same seed + same commands = same session)")
		hosts     = flag.Int("hosts", 1, "worker hosts")
		policy    = flag.String("policy", "none", "initial pricing policy: none, freemarket, ioshares or fungible")
		quantum   = flag.Duration("quantum", 100*time.Millisecond, "virtual time per step; commands land on these boundaries")
		throttle  = flag.Duration("throttle", 100*time.Millisecond, "wall-clock pause between quanta while running (0 = free-run)")
		cmdLog    = flag.String("log", "", "append every received command to this file (JSON lines)")
		restore   = flag.String("restore", "", "resume from a snapshot file instead of starting fresh")
		simShards = flag.Int("simshards", 1, "worker width for sharded simulation; wall-clock only, output is byte-identical at any value")
	)
	flag.Var(&tenants, "tenant", "initial tenant as name:class[:rate]; repeatable (default lat:latency + bulk:bulk)")
	flag.Parse()

	if *quantum <= 0 {
		fmt.Fprintln(os.Stderr, "resexd: -quantum must be positive")
		os.Exit(2)
	}
	if *simShards < 1 {
		fmt.Fprintln(os.Stderr, "resexd: -simshards must be at least 1")
		os.Exit(2)
	}
	if *simShards > *hosts {
		fmt.Fprintf(os.Stderr, "resexd: -simshards %d exceeds -hosts %d; extra workers will idle\n", *simShards, *hosts)
	}

	var sess *daemon.Session
	var err error
	if *restore != "" {
		b, rerr := snapshot.ReadFile(*restore)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "resexd:", rerr)
			os.Exit(1)
		}
		sess, err = daemon.Restore(b)
		if err == nil {
			fmt.Fprintf(os.Stderr, "resexd: restored %s, verified at %v (epoch %d)\n",
				*restore, sess.Now(), sess.Epoch())
		}
	} else {
		if len(tenants) == 0 {
			tenants = tenantFlags{
				{Name: "lat", Class: "latency"},
				{Name: "bulk", Class: "bulk"},
			}
		}
		sess, err = daemon.New(daemon.Config{
			Seed:      *seed,
			Hosts:     *hosts,
			Policy:    *policy,
			QuantumNs: quantum.Nanoseconds(),
			SimShards: *simShards,
			Tenants:   tenants,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "resexd:", err)
		os.Exit(1)
	}

	srv, err := daemon.NewServer(sess, daemon.ServerConfig{
		Socket:     *socket,
		Throttle:   *throttle,
		CommandLog: *cmdLog,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "resexd:", err)
		os.Exit(1)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "resexd: caught %v, shutting down\n", sig)
		srv.Close()
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "resexd:", err)
		os.Exit(1)
	}
	os.Remove(*socket)
}
