// Command benchex runs a standalone BenchEx configuration — the simulated
// trading-exchange benchmark — and prints client and server latency
// statistics. It is the equivalent of running the paper's benchmark by hand
// on the testbed.
//
// Usage:
//
//	benchex -buffer 64KB -requests 10000
//	benchex -buffer 64KB -intf-buffer 2MB            # with interference
//	benchex -buffer 64KB -intf-buffer 2MB -cap 3     # and a static cap
//	benchex -policy ioshares -intf-buffer 2MB        # under ResEx
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"resex/internal/experiments"
	"resex/internal/invariant"
	"resex/internal/resex"
	"resex/internal/sim"
)

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	var (
		buffer   = flag.String("buffer", "64KB", "reporting application buffer size")
		intfBuf  = flag.String("intf-buffer", "", "interfering application buffer size (empty = none)")
		capPct   = flag.Int("cap", 0, "static CPU cap for the interfering VM (percent)")
		policy   = flag.String("policy", "", "ResEx policy: freemarket or ioshares (empty = no ResEx)")
		duration = flag.Duration("duration", 2*time.Second, "measured virtual time")
		seed     = flag.Int64("seed", 0, "workload seed offset")
		audit    = flag.Bool("audit", false, "run the invariant auditor alongside the benchmark (summary on stderr; this is how BENCH_invariant.json's overhead is measured)")
	)
	flag.Parse()

	bufSize, err := parseSize(*buffer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchex:", err)
		os.Exit(2)
	}
	cfg := experiments.ScenarioConfig{RepBuffer: bufSize, IntfCap: *capPct, SLAUs: experiments.BaseSLAUs, Seed: *seed}
	if *intfBuf != "" {
		if cfg.IntfBuffer, err = parseSize(*intfBuf); err != nil {
			fmt.Fprintln(os.Stderr, "benchex:", err)
			os.Exit(2)
		}
	}
	switch strings.ToLower(*policy) {
	case "":
	case "freemarket", "fm":
		cfg.Policy = resex.NewFreeMarket()
	case "ioshares", "ios":
		cfg.Policy = resex.NewIOShares()
	default:
		fmt.Fprintf(os.Stderr, "benchex: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	s, err := experiments.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchex:", err)
		os.Exit(1)
	}
	// Sample the allocator around the run so every invocation doubles as a
	// zero-alloc regression probe for the event core. Stderr only: stdout
	// must stay byte-identical across runs of the same seed.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	opts := experiments.Options{Duration: sim.Time(duration.Nanoseconds())}
	var col *invariant.Collector
	if *audit {
		col = invariant.NewCollector(invariant.Audit)
		opts.Audit = col
	}
	wallStart := time.Now()
	s.RunMeasured(opts)
	wall := time.Since(wallStart)
	runtime.ReadMemStats(&m1)
	if col != nil {
		if err := col.WriteText(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchex:", err)
		}
	}
	if events := s.TB.Eng.Steps(); events > 0 {
		fmt.Fprintf(os.Stderr, "sim core: %d events, %.1f ns/event wall, %.3f allocs/event, %.1f B/event\n",
			events,
			float64(wall.Nanoseconds())/float64(events),
			float64(m1.Mallocs-m0.Mallocs)/float64(events),
			float64(m1.TotalAlloc-m0.TotalAlloc)/float64(events))
	}

	st := s.RepStats()
	cs := s.Reporters[0].Client.Stats()
	fmt.Printf("BenchEx %s reporting application", *buffer)
	if cfg.IntfBuffer > 0 {
		fmt.Printf(" vs %s interferer", *intfBuf)
	}
	if cfg.Policy != nil {
		fmt.Printf(" under ResEx/%s", cfg.Policy.Name())
	}
	fmt.Println()
	fmt.Printf("\nServer-side service time (%d requests):\n", st.Served)
	fmt.Printf("  PTime  %8.1f µs  (std %6.1f)\n", st.P.Mean(), st.P.StdDev())
	fmt.Printf("  CTime  %8.1f µs  (std %6.1f)\n", st.C.Mean(), st.C.StdDev())
	fmt.Printf("  WTime  %8.1f µs  (std %6.1f)\n", st.W.Mean(), st.W.StdDev())
	fmt.Printf("  total  %8.1f µs  (std %6.1f, min %.1f, max %.1f)\n",
		st.Total.Mean(), st.Total.StdDev(), st.Total.Min(), st.Total.Max())
	fmt.Printf("\nClient-side end-to-end latency (%d responses):\n", cs.Received)
	fmt.Printf("  mean %8.1f µs   p50 %8.1f   p99 %8.1f   max %8.1f\n",
		cs.Latency.Mean(), cs.Sample.Quantile(0.5), cs.Sample.Quantile(0.99), cs.Latency.Max())
	if s.Mgr != nil {
		fmt.Println("\nResEx state:")
		for _, vm := range s.Mgr.VMs() {
			fmt.Printf("  %-12s rate %6.2f  cap %3.0f%%  %s\n",
				vm.Dom.Name(), vm.Rate(), vm.Cap(), vm.Account)
		}
	}
}
