// Command benchgate enforces the performance contracts recorded by the
// repo's comparison benchmarks. Two kinds:
//
//   - -kind core (default): the event-core contract in BENCH_core.json
//     (written by BenchmarkEngineCore). Fails when the current engine
//     allocates on the steady-state event path (allocs_per_event > 0, with
//     a tiny epsilon for runtime background noise caught between the
//     MemStats samples) or the speedup over the in-process container/heap
//     baseline drops below the floor — the acceptance target (2x) minus a
//     10% regression budget.
//
//   - -kind shardsched: the fleet-placement contract in
//     BENCH_shardsched.json (written by BenchmarkShardSched). Fails when
//     the snapshot-store scheduler's speedup over the rebuild-the-world
//     baseline drops below the floor, or the per-placement allocation
//     count exceeds the copy-on-write budget (the hot path itself is
//     zero-alloc; commits clone only the hosts they touch).
//
// Either kind also fails when the file is missing or unreadable — the bench
// smoke job must have run.
//
// Gates compare two schedulers measured in the same process on the same
// machine, so they are immune to CI runner speed differences; a committed
// report from any machine documents the same ratio CI re-derives.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkEngineCore$' -benchtime=1x .
//	go run ./cmd/benchgate [-kind core] [-file BENCH_core.json]
//
//	go test -run '^$' -bench '^BenchmarkShardSched$' -benchtime=1x .
//	go run ./cmd/benchgate -kind shardsched [-file BENCH_shardsched.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// minSpeedup is the core acceptance floor: the 2x throughput target with a
// 10% regression budget.
const minSpeedup = 1.8

// maxAllocsPerEvent tolerates runtime-internal allocations (GC bookkeeping,
// timer goroutines) that can land between the MemStats samples; the event
// path itself contributes ~1 alloc/event when it regresses, far above this.
const maxAllocsPerEvent = 0.001

// minShardSpeedup is the placement-round floor. The recorded
// BENCH_shardsched.json shows ~5x on the 2k-host fleet; 3x leaves a wide
// regression budget while still catching a reintroduced per-placement
// rebuild (which lands at 1x by construction).
const minShardSpeedup = 3.0

// maxAllocsPerPlacement budgets the copy-on-write commit path: a commit
// clones each touched host once per round and the requeue/merge buffers
// amortize to near zero, so steady state measures ~2 allocs/placement. The
// legacy full-rebuild path costs thousands; 16 cleanly separates the two.
const maxAllocsPerPlacement = 16.0

type side struct {
	Engine         string  `json:"engine"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type report struct {
	Benchmark string  `json:"benchmark"`
	Events    int     `json:"events"`
	Baseline  side    `json:"baseline"`
	Current   side    `json:"current"`
	Speedup   float64 `json:"speedup"`
}

type shardSide struct {
	Scheduler          string  `json:"scheduler"`
	NsPerPlacement     float64 `json:"ns_per_placement"`
	AllocsPerPlacement float64 `json:"allocs_per_placement"`
}

type shardReport struct {
	Benchmark  string    `json:"benchmark"`
	Hosts      int       `json:"hosts"`
	VMs        int       `json:"vms"`
	Placements int       `json:"placements"`
	Baseline   shardSide `json:"baseline"`
	Current    shardSide `json:"current"`
	Speedup    float64   `json:"speedup"`
}

func main() {
	kind := flag.String("kind", "core", "which contract to check: core or shardsched")
	file := flag.String("file", "", "bench report to check (default depends on -kind)")
	flag.Parse()

	switch *kind {
	case "core":
		if *file == "" {
			*file = "BENCH_core.json"
		}
		gateCore(*file)
	case "shardsched":
		if *file == "" {
			*file = "BENCH_shardsched.json"
		}
		gateShardSched(*file)
	default:
		fmt.Fprintf(os.Stderr, "benchgate: unknown -kind %q (want core or shardsched)\n", *kind)
		os.Exit(2)
	}
}

func gateCore(file string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\nrun: go test -run '^$' -bench '^BenchmarkEngineCore$' -benchtime=1x .\n", err)
		os.Exit(1)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", file, err)
		os.Exit(1)
	}
	if r.Events <= 0 || r.Current.NsPerEvent <= 0 || r.Baseline.NsPerEvent <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s: incomplete report\n", file)
		os.Exit(1)
	}

	fail := false
	if r.Current.AllocsPerEvent > maxAllocsPerEvent {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.4f allocs/event on the steady-state path, want 0\n",
			r.Current.AllocsPerEvent)
		fail = true
	}
	if r.Speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2fx over %s, floor is %.1fx (2x target - 10%% budget)\n",
			r.Speedup, r.Baseline.Engine, minSpeedup)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok: %.1f Mevents/s, %.2fx over %s, %.4f allocs/event\n",
		r.Current.EventsPerSec/1e6, r.Speedup, r.Baseline.Engine, r.Current.AllocsPerEvent)
}

func gateShardSched(file string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\nrun: go test -run '^$' -bench '^BenchmarkShardSched$' -benchtime=1x .\n", err)
		os.Exit(1)
	}
	var r shardReport
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", file, err)
		os.Exit(1)
	}
	if r.Placements <= 0 || r.Current.NsPerPlacement <= 0 || r.Baseline.NsPerPlacement <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s: incomplete report\n", file)
		os.Exit(1)
	}

	fail := false
	if r.Current.AllocsPerPlacement > maxAllocsPerPlacement {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2f allocs/placement, budget is %.0f (COW commit path)\n",
			r.Current.AllocsPerPlacement, maxAllocsPerPlacement)
		fail = true
	}
	if r.Speedup < minShardSpeedup {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2fx over %s, floor is %.1fx\n",
			r.Speedup, r.Baseline.Scheduler, minShardSpeedup)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok: %d hosts, %.1f µs/placement, %.2fx over %s, %.2f allocs/placement\n",
		r.Hosts, r.Current.NsPerPlacement/1e3, r.Speedup, r.Baseline.Scheduler, r.Current.AllocsPerPlacement)
}
