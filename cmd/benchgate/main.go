// Command benchgate enforces the event-core performance contract recorded in
// BENCH_core.json (written by BenchmarkEngineCore). It fails when:
//
//   - the file is missing or unreadable — the bench smoke job must have run;
//   - the current engine allocates on the steady-state event path
//     (allocs_per_event > 0, with a tiny epsilon for runtime background
//     noise caught between the MemStats samples);
//   - the speedup over the in-process container/heap baseline drops below
//     the floor — the acceptance target (2x) minus a 10% regression budget.
//
// The gate compares two engines measured in the same process on the same
// machine, so it is immune to CI runner speed differences; a committed
// BENCH_core.json from any machine documents the same ratio CI re-derives.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkEngineCore$' -benchtime=1x .
//	go run ./cmd/benchgate [-file BENCH_core.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// minSpeedup is the acceptance floor: the 2x throughput target with a 10%
// regression budget.
const minSpeedup = 1.8

// maxAllocsPerEvent tolerates runtime-internal allocations (GC bookkeeping,
// timer goroutines) that can land between the MemStats samples; the event
// path itself contributes ~1 alloc/event when it regresses, far above this.
const maxAllocsPerEvent = 0.001

type side struct {
	Engine         string  `json:"engine"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type report struct {
	Benchmark string  `json:"benchmark"`
	Events    int     `json:"events"`
	Baseline  side    `json:"baseline"`
	Current   side    `json:"current"`
	Speedup   float64 `json:"speedup"`
}

func main() {
	file := flag.String("file", "BENCH_core.json", "bench report to check")
	flag.Parse()

	data, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\nrun: go test -run '^$' -bench '^BenchmarkEngineCore$' -benchtime=1x .\n", err)
		os.Exit(1)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *file, err)
		os.Exit(1)
	}
	if r.Events <= 0 || r.Current.NsPerEvent <= 0 || r.Baseline.NsPerEvent <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s: incomplete report\n", *file)
		os.Exit(1)
	}

	fail := false
	if r.Current.AllocsPerEvent > maxAllocsPerEvent {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.4f allocs/event on the steady-state path, want 0\n",
			r.Current.AllocsPerEvent)
		fail = true
	}
	if r.Speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2fx over %s, floor is %.1fx (2x target - 10%% budget)\n",
			r.Speedup, r.Baseline.Engine, minSpeedup)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok: %.1f Mevents/s, %.2fx over %s, %.4f allocs/event\n",
		r.Current.EventsPerSec/1e6, r.Speedup, r.Baseline.Engine, r.Current.AllocsPerEvent)
}
