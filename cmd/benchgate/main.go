// Command benchgate enforces the performance contracts recorded by the
// repo's comparison benchmarks. Two kinds:
//
//   - -kind core (default): the event-core contract in BENCH_core.json
//     (written by BenchmarkEngineCore). Fails when the current engine
//     allocates on the steady-state event path (allocs_per_event > 0, with
//     a tiny epsilon for runtime background noise caught between the
//     MemStats samples) or the speedup over the in-process container/heap
//     baseline drops below the floor — the acceptance target (2x) minus a
//     10% regression budget.
//
//   - -kind shardsched: the fleet-placement contract in
//     BENCH_shardsched.json (written by BenchmarkShardSched). Fails when
//     the snapshot-store scheduler's speedup over the rebuild-the-world
//     baseline drops below the floor, or the per-placement allocation
//     count exceeds the copy-on-write budget (the hot path itself is
//     zero-alloc; commits clone only the hosts they touch).
//
//   - -kind simpar: the sharded-simulation contract in BENCH_simpar.json
//     (written by BenchmarkSimPar). The fingerprint match — serial and
//     parallel runs byte-identical — is enforced unconditionally. The
//     wall-clock speedup, unlike the other gates' ratios, needs real cores
//     to exist: the full 3x floor applies at >= 8 CPUs, a per-core scaled
//     floor between 2 and 7 CPUs, and on a single-core machine the ratio
//     is reported as a warning only (workers share one CPU; the only
//     claim checkable there is determinism, and it is checked).
//
// Any kind also fails when the file is missing or unreadable — the bench
// smoke job must have run.
//
// Gates compare two configurations measured in the same process on the
// same machine, so they are immune to CI runner speed differences; a
// committed report from any machine documents the same ratio CI
// re-derives (modulo the simpar core-count scaling above).
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkEngineCore$' -benchtime=1x .
//	go run ./cmd/benchgate [-kind core] [-file BENCH_core.json]
//
//	go test -run '^$' -bench '^BenchmarkShardSched$' -benchtime=1x .
//	go run ./cmd/benchgate -kind shardsched [-file BENCH_shardsched.json]
//
//	go test -run '^$' -bench '^BenchmarkSimPar$' -benchtime=1x .
//	go run ./cmd/benchgate -kind simpar [-file BENCH_simpar.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// minSpeedup is the core acceptance floor: the 2x throughput target with a
// 10% regression budget.
const minSpeedup = 1.8

// maxAllocsPerEvent tolerates runtime-internal allocations (GC bookkeeping,
// timer goroutines) that can land between the MemStats samples; the event
// path itself contributes ~1 alloc/event when it regresses, far above this.
const maxAllocsPerEvent = 0.001

// minShardSpeedup is the placement-round floor. The recorded
// BENCH_shardsched.json shows ~5x on the 2k-host fleet; 3x leaves a wide
// regression budget while still catching a reintroduced per-placement
// rebuild (which lands at 1x by construction).
const minShardSpeedup = 3.0

// maxAllocsPerPlacement budgets the copy-on-write commit path: a commit
// clones each touched host once per round and the requeue/merge buffers
// amortize to near zero, so steady state measures ~2 allocs/placement. The
// legacy full-rebuild path costs thousands; 16 cleanly separates the two.
const maxAllocsPerPlacement = 16.0

// minSimParSpeedup is the sharded-simulation wall-clock floor at 8 workers
// on a machine with at least 8 CPUs: the 3x acceptance target. Below 8
// CPUs the floor scales per core (perCoreSimParFloor × CPUs, capped at
// 3x); on 1 CPU it is advisory only.
const minSimParSpeedup = 3.0

// perCoreSimParFloor is deliberately conservative (ideal scaling would be
// ~1x per core): conservative synchronization costs a barrier per
// lookahead window, and small fleets leave workers idle at every barrier.
const perCoreSimParFloor = 0.35

type side struct {
	Engine         string  `json:"engine"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type report struct {
	Benchmark string  `json:"benchmark"`
	Events    int     `json:"events"`
	Baseline  side    `json:"baseline"`
	Current   side    `json:"current"`
	Speedup   float64 `json:"speedup"`
	Sweep     sweep   `json:"sweep"`
}

type sweep struct {
	Experiment string  `json:"experiment"`
	Workers    int     `json:"workers"`
	CPUs       int     `json:"cpus"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	Note       string  `json:"note,omitempty"`
}

type shardSide struct {
	Scheduler          string  `json:"scheduler"`
	NsPerPlacement     float64 `json:"ns_per_placement"`
	AllocsPerPlacement float64 `json:"allocs_per_placement"`
}

type shardReport struct {
	Benchmark  string    `json:"benchmark"`
	Hosts      int       `json:"hosts"`
	VMs        int       `json:"vms"`
	Placements int       `json:"placements"`
	Baseline   shardSide `json:"baseline"`
	Current    shardSide `json:"current"`
	Speedup    float64   `json:"speedup"`
}

type simParReport struct {
	Benchmark  string  `json:"benchmark"`
	Sites      int     `json:"sites"`
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	CPUs       int     `json:"cpus"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	SerialFP   string  `json:"serial_fp"`
	ParallelFP string  `json:"parallel_fp"`
	FPMatch    bool    `json:"fingerprint_match"`
}

func main() {
	kind := flag.String("kind", "core", "which contract to check: core, shardsched or simpar")
	file := flag.String("file", "", "bench report to check (default depends on -kind)")
	flag.Parse()

	switch *kind {
	case "core":
		if *file == "" {
			*file = "BENCH_core.json"
		}
		gateCore(*file)
	case "shardsched":
		if *file == "" {
			*file = "BENCH_shardsched.json"
		}
		gateShardSched(*file)
	case "simpar":
		if *file == "" {
			*file = "BENCH_simpar.json"
		}
		gateSimPar(*file)
	default:
		fmt.Fprintf(os.Stderr, "benchgate: unknown -kind %q (want core, shardsched or simpar)\n", *kind)
		os.Exit(2)
	}
}

func gateCore(file string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\nrun: go test -run '^$' -bench '^BenchmarkEngineCore$' -benchtime=1x .\n", err)
		os.Exit(1)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", file, err)
		os.Exit(1)
	}
	if r.Events <= 0 || r.Current.NsPerEvent <= 0 || r.Baseline.NsPerEvent <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s: incomplete report\n", file)
		os.Exit(1)
	}

	fail := false
	if r.Current.AllocsPerEvent > maxAllocsPerEvent {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.4f allocs/event on the steady-state path, want 0\n",
			r.Current.AllocsPerEvent)
		fail = true
	}
	if r.Speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2fx over %s, floor is %.1fx (2x target - 10%% budget)\n",
			r.Speedup, r.Baseline.Engine, minSpeedup)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	// The sweep record is informational, but a single-core measurement must
	// not read as a silent pass: say out loud that its ratio proves nothing.
	if r.Sweep.Experiment != "" {
		switch {
		case r.Sweep.CPUs == 1:
			note := r.Sweep.Note
			if note == "" {
				note = "single-core machine: the sweep ratio reflects goroutine overhead, not scaling"
			}
			fmt.Printf("benchgate: WARN: sweep %s at %d workers on 1 CPU measured %.2fx — %s\n",
				r.Sweep.Experiment, r.Sweep.Workers, r.Sweep.Speedup, note)
		default:
			fmt.Printf("benchgate: sweep %s: %.2fx at %d workers on %d CPUs\n",
				r.Sweep.Experiment, r.Sweep.Speedup, r.Sweep.Workers, r.Sweep.CPUs)
		}
	}
	fmt.Printf("benchgate: ok: %.1f Mevents/s, %.2fx over %s, %.4f allocs/event\n",
		r.Current.EventsPerSec/1e6, r.Speedup, r.Baseline.Engine, r.Current.AllocsPerEvent)
}

// simParFloor is the wall-clock floor for a given core count; ok=false
// means the machine cannot support any scaling claim (warn-only).
func simParFloor(cpus int) (float64, bool) {
	switch {
	case cpus >= 8:
		return minSimParSpeedup, true
	case cpus >= 2:
		f := perCoreSimParFloor * float64(cpus)
		if f > minSimParSpeedup {
			f = minSimParSpeedup
		}
		return f, true
	default:
		return 0, false
	}
}

func gateSimPar(file string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\nrun: go test -run '^$' -bench '^BenchmarkSimPar$' -benchtime=1x .\n", err)
		os.Exit(1)
	}
	var r simParReport
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", file, err)
		os.Exit(1)
	}
	if r.Sites <= 0 || r.Workers <= 1 || r.SerialMs <= 0 || r.ParallelMs <= 0 || r.SerialFP == "" {
		fmt.Fprintf(os.Stderr, "benchgate: %s: incomplete report\n", file)
		os.Exit(1)
	}

	// Determinism first, on any machine: the serial and parallel runs of
	// the same fleet must have produced identical fingerprints.
	if !r.FPMatch || r.SerialFP != r.ParallelFP {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: worker width changed simulation output (serial %s vs parallel %s)\n",
			r.SerialFP, r.ParallelFP)
		os.Exit(1)
	}

	floor, scalable := simParFloor(r.CPUs)
	if !scalable {
		fmt.Printf("benchgate: WARN: %d workers on %d CPU measured %.2fx — no cores to scale onto; determinism verified (fp %s), speedup not gated\n",
			r.Workers, r.CPUs, r.Speedup, r.SerialFP)
		return
	}
	if r.Speedup < floor {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2fx at %d workers on %d CPUs, floor is %.2fx\n",
			r.Speedup, r.Workers, r.CPUs, floor)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok: %.2fx at %d workers on %d CPUs (floor %.2fx), fp %s\n",
		r.Speedup, r.Workers, r.CPUs, floor, r.SerialFP)
}

func gateShardSched(file string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\nrun: go test -run '^$' -bench '^BenchmarkShardSched$' -benchtime=1x .\n", err)
		os.Exit(1)
	}
	var r shardReport
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", file, err)
		os.Exit(1)
	}
	if r.Placements <= 0 || r.Current.NsPerPlacement <= 0 || r.Baseline.NsPerPlacement <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s: incomplete report\n", file)
		os.Exit(1)
	}

	fail := false
	if r.Current.AllocsPerPlacement > maxAllocsPerPlacement {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2f allocs/placement, budget is %.0f (COW commit path)\n",
			r.Current.AllocsPerPlacement, maxAllocsPerPlacement)
		fail = true
	}
	if r.Speedup < minShardSpeedup {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.2fx over %s, floor is %.1fx\n",
			r.Speedup, r.Baseline.Scheduler, minShardSpeedup)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok: %d hosts, %.1f µs/placement, %.2fx over %s, %.2f allocs/placement\n",
		r.Hosts, r.Current.NsPerPlacement/1e3, r.Speedup, r.Baseline.Scheduler, r.Current.AllocsPerPlacement)
}
