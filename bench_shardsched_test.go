package resex

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"resex/internal/schedshard"
	"resex/internal/sim"
)

// ---------------------------------------------------------------------------
// BenchmarkShardSched: the 2k-host placement round, before/after.
//
// Baseline: a cost-faithful replica of the pre-schedshard serial path — for
// every arriving VM, rebuild the full fleet snapshot (one cloned HostInfo
// plus a copied VM slice per host, exactly what Fleet.buildSnapshot
// allocated per placement decision) and run the old allocating Select
// (fresh trace slice + sort.Slice) over it.
//
// Current: the schedshard store + one-shard scheduler — publish the fleet
// once, then place in waves of rounds against immutable snapshots with
// copy-on-write commits. One logical shard keeps the comparison
// apples-to-apples on placement quality (zero conflicts, serial
// semantics); the round machinery being measured is what multi-shard runs
// execute per shard.
//
// Both sides score the same number of (host, spec) pairs; the measured
// difference is what the snapshot/delta-commit store eliminates: the
// per-placement O(hosts) rebuild and the per-call trace/sort allocations.
// Ratios are same-process and machine-independent; cmd/benchgate -kind
// shardsched gates on them.
// ---------------------------------------------------------------------------

// shardBenchHosts/shardBenchVMs size the fleet. 2000 hosts is the ROADMAP
// target scale; 2500 VMs keeps the baseline's O(VMs·hosts) rebuild within
// benchmark-smoke time while filling ~4% of the fleet — rebuild cost does
// not depend on fill, so the ratio is representative.
const (
	shardBenchHosts = 2000
	shardBenchVMs   = 2500
	shardBenchWave  = 125
)

type shardBenchArrival struct {
	spec schedshard.Spec
	vm   schedshard.VMInfo
}

func shardBenchArrivals(seed int64) []shardBenchArrival {
	out := make([]shardBenchArrival, 0, shardBenchVMs)
	for i := 0; i < shardBenchVMs; i++ {
		var spec schedshard.Spec
		var vm schedshard.VMInfo
		if i%4 == 3 {
			spec = schedshard.Spec{Name: fmt.Sprintf("bulk%d", i), BufferSize: 2 << 20}
			vm = schedshard.VMInfo{Spec: spec, BytesPerSec: 60e6, BufferSize: 2 << 20}
		} else {
			spec = schedshard.Spec{Name: fmt.Sprintf("ls%d", i), LatencySensitive: true, BufferSize: 64 << 10}
			vm = schedshard.VMInfo{Spec: spec, BytesPerSec: 2e6, BufferSize: 64 << 10}
		}
		out = append(out, shardBenchArrival{spec: spec, vm: vm})
	}
	rng := sim.NewRand(seed)
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func shardBenchFleet() []*schedshard.HostInfo {
	hosts := make([]*schedshard.HostInfo, shardBenchHosts)
	for i := range hosts {
		hosts[i] = &schedshard.HostInfo{
			Node: i + 1, FreePCPUs: 31, TotalPCPUs: 31,
			LinkBytesPerSec: 1e9, ResoHeadroom: 1,
		}
	}
	return hosts
}

// legacyPipeline replicates the pre-schedshard Pipeline.Select hot path
// exactly: the same plugin chain, but a fresh trace allocation per call and
// a sort.Slice (closure + reflect swapper) over it.
type legacyPipeline struct {
	filters []schedshard.FilterPlugin
	scorers []legacyScorer
}

type legacyScorer struct {
	plugin schedshard.ScorePlugin
	weight float64
}

func newLegacyInterferencePipeline() *legacyPipeline {
	return &legacyPipeline{
		filters: []schedshard.FilterPlugin{schedshard.FitsPCPUs{}, schedshard.HealthyHost{}},
		scorers: []legacyScorer{
			{schedshard.InterferenceAware{}, 1},
			{schedshard.ResoHeadroom{}, 0.3},
			{schedshard.SpreadByCPU{}, 0.5},
		},
	}
}

func (p *legacyPipeline) Select(hosts []*schedshard.HostInfo, s schedshard.Spec) (*schedshard.HostInfo, []schedshard.HostScore) {
	var best *schedshard.HostInfo
	bestScore := 0.0
	trace := make([]schedshard.HostScore, 0, len(hosts))
	for _, h := range hosts {
		hs := schedshard.HostScore{Node: h.Node, Feasible: true}
		for _, f := range p.filters {
			if !f.Filter(h, s) {
				hs.Feasible = false
				break
			}
		}
		if hs.Feasible {
			for _, ws := range p.scorers {
				hs.Score += ws.weight * ws.plugin.Score(h, s)
			}
			if best == nil || hs.Score > bestScore ||
				(hs.Score == bestScore && h.Node < best.Node) {
				best, bestScore = h, hs.Score
			}
		}
		trace = append(trace, hs)
	}
	sort.Slice(trace, func(i, j int) bool { return trace[i].Node < trace[j].Node })
	return best, trace
}

// measureShardBaseline: rebuild-the-world serial placement.
func measureShardBaseline(arrivals []shardBenchArrival) (elapsed time.Duration, mallocs uint64, placed int) {
	master := shardBenchFleet()
	pipe := newLegacyInterferencePipeline()
	rebuild := func() []*schedshard.HostInfo {
		out := make([]*schedshard.HostInfo, len(master))
		for i, h := range master {
			c := *h
			c.VMs = append([]schedshard.VMInfo(nil), h.VMs...)
			out[i] = &c
		}
		return out
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, a := range arrivals {
		snap := rebuild()
		best, _ := pipe.Select(snap, a.spec)
		if best == nil {
			continue
		}
		h := master[best.Node-1]
		h.FreePCPUs--
		h.IOCommitted += a.vm.BytesPerSec / h.LinkBytesPerSec
		h.VMs = append(h.VMs, a.vm)
		placed++
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.Mallocs - m0.Mallocs, placed
}

// measureShardCurrent: snapshot store + one-shard scheduler in waves.
func measureShardCurrent(arrivals []shardBenchArrival) (elapsed time.Duration, mallocs uint64, placed int) {
	store := schedshard.NewStore()
	store.Publish(shardBenchFleet())
	sched := schedshard.NewScheduler(store, schedshard.Config{Shards: 1, Workers: 1, Seed: 7})
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for lo := 0; lo < len(arrivals); lo += shardBenchWave {
		hi := lo + shardBenchWave
		if hi > len(arrivals) {
			hi = len(arrivals)
		}
		for _, a := range arrivals[lo:hi] {
			sched.Enqueue(a.spec, a.vm)
		}
		sched.Round()
	}
	sched.Run()
	elapsed = time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.Mallocs - m0.Mallocs, len(sched.Bound())
}

// benchShardJSON is the BENCH_shardsched.json schema; cmd/benchgate -kind
// shardsched reads it.
type benchShardJSON struct {
	Benchmark  string         `json:"benchmark"`
	Hosts      int            `json:"hosts"`
	VMs        int            `json:"vms"`
	Placements int            `json:"placements"`
	Baseline   benchShardSide `json:"baseline"`
	Current    benchShardSide `json:"current"`
	Speedup    float64        `json:"speedup"`
}

type benchShardSide struct {
	Scheduler          string  `json:"scheduler"`
	NsPerPlacement     float64 `json:"ns_per_placement"`
	AllocsPerPlacement float64 `json:"allocs_per_placement"`
}

// BenchmarkShardSched measures the placement round at fleet scale and
// records BENCH_shardsched.json for the CI bench gate.
func BenchmarkShardSched(b *testing.B) {
	var out benchShardJSON
	for i := 0; i < b.N; i++ {
		arrivals := shardBenchArrivals(7)
		lElapsed, lMallocs, lPlaced := measureShardBaseline(arrivals)
		cElapsed, cMallocs, cPlaced := measureShardCurrent(arrivals)
		if lPlaced != len(arrivals) || cPlaced != len(arrivals) {
			b.Fatalf("placed baseline=%d current=%d, want %d", lPlaced, cPlaced, len(arrivals))
		}
		side := func(name string, d time.Duration, mallocs uint64) benchShardSide {
			return benchShardSide{
				Scheduler:          name,
				NsPerPlacement:     float64(d.Nanoseconds()) / float64(len(arrivals)),
				AllocsPerPlacement: float64(mallocs) / float64(len(arrivals)),
			}
		}
		out = benchShardJSON{
			Benchmark:  "BenchmarkShardSched",
			Hosts:      shardBenchHosts,
			VMs:        shardBenchVMs,
			Placements: len(arrivals),
			Baseline:   side("rebuild+select", lElapsed, lMallocs),
			Current:    side("snapshot-store+1shard", cElapsed, cMallocs),
		}
		out.Speedup = out.Baseline.NsPerPlacement / out.Current.NsPerPlacement
	}
	b.ReportMetric(out.Speedup, "placement_speedup")
	b.ReportMetric(out.Current.AllocsPerPlacement, "allocs/placement")
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_shardsched.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
